//! The edge-labeled directed graph `D = (V, E)`, `E ⊆ V × Σ × V` (§2).

use cfpq_grammar::symbol::Interner;
use std::fmt;

/// A node identifier; nodes are dense indices `0 .. n` as in §4.1
/// ("we enumerate the nodes of the graph D from 0 to |V| − 1").
pub type NodeId = u32;

/// An interned edge label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Label(pub u32);

impl Label {
    /// The index as `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single labeled edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Edge label.
    pub label: Label,
    /// Target node.
    pub to: NodeId,
}

/// An edge-labeled directed graph with interned labels.
///
/// The structure maintains both a flat edge list (what matrix solvers
/// consume for initialization, Algorithm 1 lines 6-7) and forward
/// adjacency per node (what the top-down GLL baseline consumes).
///
/// # Invariant: `E` is a set
///
/// `E ⊆ V × Σ × V` (§2) is a *set*, and [`Graph::add_edge`] enforces it:
/// inserting an edge that is already present is a no-op (it returns
/// `false`), so the edge list, the per-node adjacency and the per-label
/// views always agree with each other and with the Boolean adjacency
/// matrices a `GraphIndex` derives from them — no manual
/// [`Graph::dedup_edges`] pass is ever required.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    labels: Interner,
    n_nodes: usize,
    edges: Vec<Edge>,
    /// adj[u] = sorted-on-demand list of (label, v).
    adj: Vec<Vec<(Label, NodeId)>>,
    /// Membership set enforcing edge uniqueness in O(1) per insertion.
    edge_set: std::collections::HashSet<(NodeId, u32, NodeId)>,
}

impl Graph {
    /// Creates a graph with `n_nodes` nodes and no edges.
    pub fn new(n_nodes: usize) -> Self {
        Self {
            labels: Interner::new(),
            n_nodes,
            edges: Vec::new(),
            adj: vec![Vec::new(); n_nodes],
            edge_set: std::collections::HashSet::new(),
        }
    }

    /// Number of nodes `|V|`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of edges `|E|`.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct labels in use.
    pub fn n_labels(&self) -> usize {
        self.labels.len()
    }

    /// Interns a label name.
    pub fn label(&mut self, name: &str) -> Label {
        Label(self.labels.intern(name))
    }

    /// Looks up a label without interning.
    pub fn get_label(&self, name: &str) -> Option<Label> {
        self.labels.get(name).map(Label)
    }

    /// The name of `label`.
    pub fn label_name(&self, label: Label) -> &str {
        self.labels.name(label.0).unwrap_or("?label")
    }

    /// Iterates `(Label, name)` pairs.
    pub fn labels(&self) -> impl Iterator<Item = (Label, &str)> {
        self.labels.iter().map(|(i, n)| (Label(i), n))
    }

    /// Grows the node set so that `id` is valid.
    pub fn ensure_node(&mut self, id: NodeId) {
        let needed = id as usize + 1;
        if needed > self.n_nodes {
            self.n_nodes = needed;
            self.adj.resize(needed, Vec::new());
        }
    }

    /// Adds the edge `(from, label, to)`, growing the node set if needed.
    /// Returns `true` if the edge was new; re-inserting an existing edge
    /// is a no-op (`E` is a set, see the type-level invariant), so every
    /// view of the graph stays coherent without a manual
    /// [`Graph::dedup_edges`] pass. The matrix side mirrors both
    /// contracts: a `GraphIndex`'s `add_edges` skips duplicates the same
    /// way (reporting a count instead of a `bool`) and grows its node
    /// universe on unseen ids just like this method does.
    pub fn add_edge(&mut self, from: NodeId, label: Label, to: NodeId) -> bool {
        self.ensure_node(from);
        self.ensure_node(to);
        if !self.edge_set.insert((from, label.0, to)) {
            return false;
        }
        self.edges.push(Edge { from, label, to });
        self.adj[from as usize].push((label, to));
        true
    }

    /// Adds an edge by label name; returns `true` if the edge was new.
    pub fn add_edge_named(&mut self, from: NodeId, label: &str, to: NodeId) -> bool {
        let l = self.label(label);
        self.add_edge(from, l, to)
    }

    /// True if the edge `(from, label, to)` is present.
    pub fn has_edge(&self, from: NodeId, label: Label, to: NodeId) -> bool {
        self.edge_set.contains(&(from, label.0, to))
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Forward adjacency of `u`: `(label, v)` pairs in insertion order.
    pub fn out_edges(&self, u: NodeId) -> &[(Label, NodeId)] {
        &self.adj[u as usize]
    }

    /// Edges with a given label.
    pub fn edges_with_label(&self, label: Label) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.label == label)
            .map(|e| (e.from, e.to))
    }

    /// Removes duplicate `(from, label, to)` edges (keeps first
    /// occurrence). Since [`Graph::add_edge`] rejects duplicates at
    /// insertion time this is now always a no-op; it is kept as a public
    /// entry point so callers written against the old multigraph
    /// behaviour keep compiling (and as a self-check: it debug-asserts
    /// the uniqueness invariant).
    pub fn dedup_edges(&mut self) {
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        let mut kept = Vec::with_capacity(self.edges.len());
        for &e in &self.edges {
            if seen.insert((e.from, e.label.0, e.to)) {
                kept.push(e);
            }
        }
        debug_assert_eq!(
            kept.len(),
            self.edges.len(),
            "add_edge enforces uniqueness; dedup_edges found duplicates"
        );
        if kept.len() != self.edges.len() {
            self.edges = kept;
            self.rebuild_adjacency();
        }
    }

    fn rebuild_adjacency(&mut self) {
        for a in &mut self.adj {
            a.clear();
        }
        for &Edge { from, label, to } in &self.edges {
            self.adj[from as usize].push((label, to));
        }
    }

    /// Disjoint union of `k` copies of this graph: node `i` of copy `c`
    /// becomes `c·n + i`. This is how the paper's synthetic graphs g1, g2,
    /// g3 were constructed ("simply repeating the existing graphs"); the
    /// paper's result counts are exactly 8× the base ontologies', which
    /// pins down disjoint-copy semantics.
    pub fn repeat(&self, k: usize) -> Graph {
        assert!(k >= 1, "repeat requires k >= 1");
        let n = self.n_nodes as NodeId;
        let mut out = Graph {
            labels: self.labels.clone(),
            n_nodes: self.n_nodes * k,
            edges: Vec::with_capacity(self.edges.len() * k),
            adj: vec![Vec::new(); self.n_nodes * k],
            edge_set: std::collections::HashSet::with_capacity(self.edges.len() * k),
        };
        for c in 0..k as NodeId {
            for &Edge { from, label, to } in &self.edges {
                let (f, t) = (c * n + from, c * n + to);
                out.edges.push(Edge {
                    from: f,
                    label,
                    to: t,
                });
                out.adj[f as usize].push((label, t));
                out.edge_set.insert((f, label.0, t));
            }
        }
        out
    }

    /// Per-label edge counts, useful in reports and tests.
    pub fn label_histogram(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.labels.len()];
        for e in &self.edges {
            counts[e.label.index()] += 1;
        }
        self.labels
            .iter()
            .map(|(i, n)| (n.to_owned(), counts[i as usize]))
            .collect()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graph {{ nodes: {}, edges: {}, labels: {} }}",
            self.n_nodes,
            self.edges.len(),
            self.labels.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge_named(0, "a", 1);
        g.add_edge_named(1, "b", 2);
        g.add_edge_named(2, "a", 0);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.n_labels(), 2);
        let a = g.get_label("a").unwrap();
        let pairs: Vec<_> = g.edges_with_label(a).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 0)]);
        assert_eq!(g.out_edges(1), &[(g.get_label("b").unwrap(), 2)]);
    }

    #[test]
    fn add_edge_grows_nodes() {
        let mut g = Graph::new(0);
        g.add_edge_named(5, "x", 9);
        assert_eq!(g.n_nodes(), 10);
        assert_eq!(g.out_edges(5).len(), 1);
        assert!(g.out_edges(3).is_empty());
    }

    #[test]
    fn self_loops_and_duplicates_rejected_at_insertion() {
        let mut g = Graph::new(1);
        assert!(g.add_edge_named(0, "a", 0));
        assert!(g.add_edge_named(0, "b", 0));
        assert!(!g.add_edge_named(0, "a", 0), "duplicate is a no-op");
        assert_eq!(g.n_edges(), 2);
        g.dedup_edges(); // now a no-op; the invariant already holds
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.out_edges(0).len(), 2);
    }

    #[test]
    fn duplicate_insertion_keeps_views_coherent() {
        // Regression test for the old footgun: duplicate add_edge calls
        // used to leave duplicates in `edges`/`out_edges` until a manual
        // dedup_edges() call; all views must now stay coherent through
        // duplicate insertions with no manual pass.
        let mut g = Graph::new(3);
        for _ in 0..3 {
            g.add_edge_named(0, "a", 1);
            g.add_edge_named(1, "b", 2);
        }
        assert_eq!(g.n_edges(), 2);
        let a = g.get_label("a").unwrap();
        assert_eq!(g.edges_with_label(a).collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(g.out_edges(0), &[(a, 1)]);
        assert!(g.has_edge(0, a, 1));
        assert!(!g.has_edge(1, a, 0));
        assert_eq!(g.label_histogram(), vec![("a".into(), 1), ("b".into(), 1)]);
        // The flat edge list agrees with the membership view.
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn repeat_is_disjoint_union() {
        let g = triangle();
        let r = g.repeat(3);
        assert_eq!(r.n_nodes(), 9);
        assert_eq!(r.n_edges(), 9);
        // Copy 2's `a` edges are shifted by 6.
        let a = r.get_label("a").unwrap();
        let pairs: Vec<_> = r.edges_with_label(a).collect();
        assert!(pairs.contains(&(6, 7)));
        assert!(pairs.contains(&(8, 6)));
        // No cross-copy edges.
        for e in r.edges() {
            assert_eq!(e.from / 3, e.to / 3, "edge crosses copies: {e:?}");
        }
    }

    #[test]
    fn label_histogram_counts() {
        let g = triangle();
        let h = g.label_histogram();
        assert_eq!(h, vec![("a".to_owned(), 2), ("b".to_owned(), 1)]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn repeat_zero_panics() {
        triangle().repeat(0);
    }
}

/// Structural statistics of a graph — iteration counts of the fixpoint
/// solvers correlate with these (cycle structure in particular), so the
/// bench harness reports them alongside timings.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count |V|.
    pub n_nodes: usize,
    /// Edge count |E|.
    pub n_edges: usize,
    /// Distinct labels.
    pub n_labels: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of strongly connected components (Tarjan).
    pub n_sccs: usize,
    /// Size of the largest SCC; > 1 means the graph is cyclic beyond
    /// self-loops.
    pub largest_scc: usize,
    /// Nodes with at least one self-loop.
    pub n_self_loops: usize,
}

impl Graph {
    /// Computes [`GraphStats`], including SCCs via iterative Tarjan.
    pub fn stats(&self) -> GraphStats {
        let sccs = self.sccs();
        let mut scc_sizes = vec![0usize; self.n_nodes];
        for &c in &sccs {
            scc_sizes[c as usize] += 1;
        }
        let n_sccs = scc_sizes.iter().filter(|&&s| s > 0).count();
        let largest_scc = scc_sizes.iter().copied().max().unwrap_or(0);
        let mut self_loop_nodes = std::collections::HashSet::new();
        for e in &self.edges {
            if e.from == e.to {
                self_loop_nodes.insert(e.from);
            }
        }
        GraphStats {
            n_nodes: self.n_nodes,
            n_edges: self.edges.len(),
            n_labels: self.labels.len(),
            max_out_degree: self.adj.iter().map(Vec::len).max().unwrap_or(0),
            n_sccs,
            largest_scc,
            n_self_loops: self_loop_nodes.len(),
        }
    }

    /// Strongly connected components (iterative Tarjan): returns, per
    /// node, a component id in `0..n_nodes` (ids are component
    /// representatives, not necessarily dense).
    pub fn sccs(&self) -> Vec<NodeId> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.n_nodes;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![0 as NodeId; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;

        // Explicit DFS state machine: (node, next child position).
        let mut call_stack: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call_stack.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
                let out = self.out_edges(v);
                if *child < out.len() {
                    let (_, w) = out[*child];
                    *child += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is the root of an SCC.
                        loop {
                            let w = stack.pop().expect("tarjan stack non-empty");
                            on_stack[w as usize] = false;
                            comp[w as usize] = v;
                            if w == v {
                                break;
                            }
                        }
                    }
                }
            }
        }
        comp
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn scc_on_cycle_and_chain() {
        let mut g = Graph::new(5);
        // Cycle 0 -> 1 -> 2 -> 0, chain 3 -> 4.
        g.add_edge_named(0, "a", 1);
        g.add_edge_named(1, "a", 2);
        g.add_edge_named(2, "a", 0);
        g.add_edge_named(3, "a", 4);
        let comp = g.sccs();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[4]);
        let stats = g.stats();
        assert_eq!(stats.n_sccs, 3);
        assert_eq!(stats.largest_scc, 3);
        assert_eq!(stats.n_self_loops, 0);
    }

    #[test]
    fn stats_on_paper_example() {
        let mut g = Graph::new(3);
        g.add_edge_named(0, "subClassOf_r", 0);
        g.add_edge_named(0, "type_r", 1);
        g.add_edge_named(1, "type_r", 2);
        g.add_edge_named(2, "subClassOf", 0);
        g.add_edge_named(2, "type", 2);
        let stats = g.stats();
        assert_eq!(stats.n_nodes, 3);
        assert_eq!(stats.n_edges, 5);
        assert_eq!(stats.n_labels, 4);
        assert_eq!(stats.n_self_loops, 2);
        // 0 -> 1 -> 2 -> 0 is one SCC of size 3.
        assert_eq!(stats.largest_scc, 3);
        assert_eq!(stats.n_sccs, 1);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let mut g = Graph::new(4);
        g.add_edge_named(0, "x", 1);
        g.add_edge_named(0, "x", 2);
        g.add_edge_named(1, "x", 3);
        g.add_edge_named(2, "x", 3);
        let stats = g.stats();
        assert_eq!(stats.n_sccs, 4);
        assert_eq!(stats.largest_scc, 1);
        assert_eq!(stats.max_out_degree, 2);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new(0);
        let stats = g.stats();
        assert_eq!(stats.n_nodes, 0);
        assert_eq!(stats.n_sccs, 0);
        assert_eq!(stats.largest_scc, 0);
    }

    #[test]
    fn self_loop_is_singleton_scc() {
        let mut g = Graph::new(2);
        g.add_edge_named(0, "a", 0);
        g.add_edge_named(0, "a", 1);
        let stats = g.stats();
        assert_eq!(stats.n_sccs, 2);
        assert_eq!(stats.n_self_loops, 1);
    }
}
