//! Synthetic stand-ins for the paper's RDF ontology datasets.
//!
//! The paper evaluates on "a dataset of popular ontologies taken from
//! [Zhang et al.]" — RDF files we do not have. Per the substitution policy
//! in DESIGN.md §3, this module generates deterministic ontology-like
//! triple sets with the **exact** triple counts of Tables 1 and 2:
//!
//! * a `subClassOf` class **DAG** (a spanning tree plus extra-parent
//!   edges — real ontologies use multiple inheritance, which is what
//!   makes the same-generation relation large),
//! * `type` edges from instance nodes into the class DAG (instances may
//!   carry several types), and
//! * inert padding predicates that Q1/Q2 never traverse (real ontologies
//!   also contain many such triples).
//!
//! Query answer *counts* therefore differ from the paper's (the real
//! ontologies' exact shapes are not reproducible from the paper), but
//! graph sizes, label distribution and the DAG-plus-inverse structure
//! that drives the algorithms' behaviour are preserved. The synthetic
//! graphs g1, g2, g3 are 8 disjoint copies of funding, wine and pizza
//! respectively — pinned down by the paper's own triple and result counts
//! (e.g. 8·1086 = 8688 and 8·17634 = 141072).

use crate::graph::Graph;
use crate::triples::TripleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape parameters for one synthetic ontology.
#[derive(Clone, Copy, Debug)]
pub struct OntologyProfile {
    /// Dataset name as it appears in Tables 1 and 2.
    pub name: &'static str,
    /// Exact number of triples (the `#triples` column).
    pub triples: usize,
    /// Fraction of triples that are `subClassOf` edges.
    pub class_share: f64,
    /// Fraction of triples that are `type` edges.
    pub type_share: f64,
    /// Classes per `subClassOf` edge (< 1.0 ⇒ multiple inheritance: the
    /// surplus edges become extra parents). Lower values give denser DAGs
    /// and much larger same-generation relations.
    pub class_ratio: f64,
    /// Instances per `type` edge (< 1.0 ⇒ multi-typed instances).
    pub instance_ratio: f64,
    /// Type-target class pool as a fraction of the `type` edge count;
    /// real ontologies declare many classes that never participate in
    /// `subClassOf`, so the pool can exceed the DAG's class count. Dense
    /// co-typing over a modest pool is what makes the type branch of Q1
    /// produce near-all-pairs relations (e.g. skos, generations).
    pub class_pool_ratio: f64,
    /// RNG seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

/// Inert predicates padding the triple count; Q1/Q2 never traverse these.
const PADDING_PREDICATES: &[&str] = &["label", "comment", "domain", "range", "seeAlso"];

/// The 11 ontologies of Tables 1 and 2 with their exact triple counts.
/// Shape parameters are chosen so that the datasets the paper reports
/// outsized `#results` for (atom-primitive, wine, pizza, funding — up to
/// ~36 results per triple) get denser multiple-inheritance DAGs.
pub const PROFILES: &[OntologyProfile] = &[
    // class_share is calibrated against the paper's Q2 counts (Q2 only
    // traverses subClassOf, so a tiny Q2 count pins a tiny subClassOf
    // share — e.g. skos: 1 result, generations: 0); type_share,
    // class_pool_ratio and instance_ratio against the Q1 magnitudes.
    OntologyProfile {
        name: "skos",
        triples: 252,
        class_share: 0.02,
        type_share: 0.55,
        class_ratio: 0.60,
        instance_ratio: 0.40,
        class_pool_ratio: 0.25,
        seed: 0xC0FFEE01,
    },
    OntologyProfile {
        name: "generations",
        triples: 273,
        class_share: 0.01,
        type_share: 0.60,
        class_ratio: 0.60,
        instance_ratio: 0.35,
        class_pool_ratio: 0.28,
        seed: 0xC0FFEE02,
    },
    OntologyProfile {
        name: "travel",
        triples: 277,
        class_share: 0.20,
        type_share: 0.50,
        class_ratio: 0.75,
        instance_ratio: 0.45,
        class_pool_ratio: 0.30,
        seed: 0xC0FFEE03,
    },
    OntologyProfile {
        name: "univ-bench",
        triples: 293,
        class_share: 0.25,
        type_share: 0.50,
        class_ratio: 0.70,
        instance_ratio: 0.45,
        class_pool_ratio: 0.30,
        seed: 0xC0FFEE04,
    },
    OntologyProfile {
        name: "atom-primitive",
        triples: 425,
        class_share: 0.35,
        type_share: 0.30,
        class_ratio: 0.45,
        instance_ratio: 0.40,
        class_pool_ratio: 0.50,
        seed: 0xC0FFEE05,
    },
    OntologyProfile {
        name: "biomedical-measure-primitive",
        triples: 459,
        class_share: 0.45,
        type_share: 0.25,
        class_ratio: 0.40,
        instance_ratio: 0.40,
        class_pool_ratio: 0.50,
        seed: 0xC0FFEE06,
    },
    OntologyProfile {
        name: "foaf",
        triples: 631,
        class_share: 0.03,
        type_share: 0.55,
        class_ratio: 0.70,
        instance_ratio: 0.30,
        class_pool_ratio: 0.22,
        seed: 0xC0FFEE07,
    },
    OntologyProfile {
        name: "people-pets",
        triples: 640,
        class_share: 0.06,
        type_share: 0.55,
        class_ratio: 0.60,
        instance_ratio: 0.30,
        class_pool_ratio: 0.25,
        seed: 0xC0FFEE08,
    },
    OntologyProfile {
        name: "funding",
        triples: 1086,
        class_share: 0.35,
        type_share: 0.40,
        class_ratio: 0.55,
        instance_ratio: 0.40,
        class_pool_ratio: 0.35,
        seed: 0xC0FFEE09,
    },
    OntologyProfile {
        name: "wine",
        triples: 1839,
        class_share: 0.08,
        type_share: 0.55,
        class_ratio: 0.55,
        instance_ratio: 0.28,
        class_pool_ratio: 0.22,
        seed: 0xC0FFEE0A,
    },
    OntologyProfile {
        name: "pizza",
        triples: 1980,
        class_share: 0.35,
        type_share: 0.35,
        class_ratio: 0.45,
        instance_ratio: 0.35,
        class_pool_ratio: 0.35,
        seed: 0xC0FFEE0B,
    },
];

impl OntologyProfile {
    /// Generates the triple set for this profile (deterministic).
    pub fn generate(&self) -> TripleSet {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = TripleSet::new();

        let n_class_edges = ((self.triples as f64) * self.class_share).round() as usize;
        let n_type_edges = ((self.triples as f64) * self.type_share).round() as usize;
        let n_padding = self.triples - n_class_edges - n_type_edges;

        // --- subClassOf DAG ------------------------------------------------
        // Spanning forest over n_classes, then surplus edges as extra
        // parents (edges always point to a lower-numbered class: acyclic).
        // Grow n_classes until the DAG capacity n(n-1)/2 comfortably
        // exceeds the edge demand, so rejection sampling terminates fast.
        let mut n_classes = (((n_class_edges as f64) * self.class_ratio).round() as usize).max(2);
        while n_classes * (n_classes - 1) / 2 < 2 * n_class_edges {
            n_classes += 1;
        }
        let mut class_edges: HashSet<(usize, usize)> = HashSet::new();
        for i in 1..n_classes {
            if class_edges.len() >= n_class_edges {
                break;
            }
            let parent = rng.gen_range(0..i);
            class_edges.insert((i, parent));
        }
        while class_edges.len() < n_class_edges {
            let child = rng.gen_range(1..n_classes);
            let parent = rng.gen_range(0..child);
            class_edges.insert((child, parent));
        }
        let mut class_edges: Vec<_> = class_edges.into_iter().collect();
        class_edges.sort_unstable();
        for (child, parent) in class_edges {
            t.add(&format!("c{child}"), "subClassOf", &format!("c{parent}"));
        }

        // --- type edges -----------------------------------------------------
        // Instances carry 1+ types over a class *pool* that may exceed
        // the subClassOf DAG (classes that are only ever type targets).
        // Grow the instance pool until instance × class capacity
        // comfortably exceeds the edge demand.
        let class_pool = n_classes
            .max(((n_type_edges as f64) * self.class_pool_ratio).round() as usize)
            .max(2);
        let mut n_instances = (((n_type_edges as f64) * self.instance_ratio).round() as usize)
            .max(1)
            .min(n_type_edges.max(1));
        while n_instances * class_pool < 2 * n_type_edges {
            n_instances += 1;
        }
        let mut type_edges: HashSet<(usize, usize)> = HashSet::new();
        for j in 0..n_instances.min(n_type_edges) {
            let class = rng.gen_range(0..class_pool);
            type_edges.insert((j, class));
        }
        while type_edges.len() < n_type_edges {
            let inst = rng.gen_range(0..n_instances);
            let class = rng.gen_range(0..class_pool);
            type_edges.insert((inst, class));
        }
        let mut type_edges: Vec<_> = type_edges.into_iter().collect();
        type_edges.sort_unstable();
        for (inst, class) in type_edges {
            t.add(&format!("i{inst}"), "type", &format!("c{class}"));
        }

        // --- inert padding triples ------------------------------------------
        // Rejection-sampled distinct (s, p, o): triple sets are sets, so
        // graphs keep the exact 2-edges-per-triple relationship now that
        // `Graph::add_edge` enforces edge uniqueness.
        let mut node_pool: Vec<String> = (0..class_pool).map(|i| format!("c{i}")).collect();
        node_pool.extend((0..n_instances).map(|j| format!("i{j}")));
        let mut padding_seen: HashSet<(usize, usize, usize)> = HashSet::new();
        for k in 0..n_padding {
            let p_idx = k % PADDING_PREDICATES.len();
            loop {
                let si = rng.gen_range(0..node_pool.len());
                let oi = rng.gen_range(0..node_pool.len());
                if padding_seen.insert((p_idx, si, oi)) {
                    t.add(&node_pool[si], PADDING_PREDICATES[p_idx], &node_pool[oi]);
                    break;
                }
            }
        }

        debug_assert_eq!(t.len(), self.triples);
        t
    }
}

/// Looks up one of the 11 ontology profiles by name.
pub fn profile(name: &str) -> Option<&'static OntologyProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Generates a named ontology triple set (one of the 11 of Tables 1/2).
pub fn dataset(name: &str) -> Option<TripleSet> {
    profile(name).map(OntologyProfile::generate)
}

/// One entry of the evaluation suite (a row of Tables 1 and 2).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Row name (`skos`, …, `g3`).
    pub name: String,
    /// The `#triples` column value.
    pub triples: usize,
    /// The CFPQ graph (2 edges per triple: forward + inverse, §6).
    pub graph: Graph,
}

/// Builds the full 14-row evaluation suite of Tables 1 and 2: the 11
/// ontologies plus g1 = 8×funding, g2 = 8×wine, g3 = 8×pizza.
pub fn evaluation_suite() -> Vec<Dataset> {
    let mut suite: Vec<Dataset> = PROFILES
        .iter()
        .map(|p| Dataset {
            name: p.name.to_owned(),
            triples: p.triples,
            graph: p.generate().to_graph(),
        })
        .collect();
    for (gname, base) in [("g1", "funding"), ("g2", "wine"), ("g3", "pizza")] {
        let base_ds = suite
            .iter()
            .find(|d| d.name == base)
            .expect("base ontology present");
        suite.push(Dataset {
            name: gname.to_owned(),
            triples: base_ds.triples * 8,
            graph: base_ds.graph.repeat(8),
        });
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_counts_match_the_paper_exactly() {
        let expected = [
            ("skos", 252),
            ("generations", 273),
            ("travel", 277),
            ("univ-bench", 293),
            ("atom-primitive", 425),
            ("biomedical-measure-primitive", 459),
            ("foaf", 631),
            ("people-pets", 640),
            ("funding", 1086),
            ("wine", 1839),
            ("pizza", 1980),
        ];
        for (name, count) in expected {
            let t = dataset(name).unwrap_or_else(|| panic!("dataset {name}"));
            assert_eq!(t.len(), count, "{name} triple count");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset("wine").unwrap().to_text();
        let b = dataset("wine").unwrap().to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn graphs_have_two_edges_per_triple() {
        let t = dataset("skos").unwrap();
        let g = t.to_graph();
        assert_eq!(g.n_edges(), 2 * t.len());
        assert!(g.get_label("subClassOf").is_some());
        assert!(g.get_label("subClassOf_r").is_some());
        assert!(g.get_label("type").is_some());
        assert!(g.get_label("type_r").is_some());
    }

    #[test]
    fn evaluation_suite_matches_table_rows() {
        let suite = evaluation_suite();
        assert_eq!(suite.len(), 14);
        let by_name = |n: &str| suite.iter().find(|d| d.name == n).unwrap();
        // g1/g2/g3 triple counts from Tables 1/2.
        assert_eq!(by_name("g1").triples, 8688);
        assert_eq!(by_name("g2").triples, 14712);
        assert_eq!(by_name("g3").triples, 15840);
        assert_eq!(
            by_name("g1").graph.n_edges(),
            8 * by_name("funding").graph.n_edges()
        );
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset("nope").is_none());
    }

    #[test]
    fn class_structure_is_an_acyclic_multi_parent_dag() {
        let t = dataset("pizza").unwrap();
        let mut n_edges = 0usize;
        let mut multi_parent = 0usize;
        let mut parents_of: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        for (s, p, o) in t.iter() {
            if p == "subClassOf" {
                n_edges += 1;
                *parents_of.entry(s).or_insert(0) += 1;
                // Acyclicity invariant: edges point to lower class ids.
                let child: usize = s[1..].parse().unwrap();
                let parent: usize = o[1..].parse().unwrap();
                assert!(parent < child, "edge {s} -> {o} must go down-index");
            }
        }
        multi_parent += parents_of.values().filter(|&&d| d > 1).count();
        assert_eq!(n_edges, 693, "pizza: 0.35 * 1980 subClassOf edges");
        assert!(
            multi_parent > 50,
            "pizza must exhibit multiple inheritance, got {multi_parent}"
        );
    }

    #[test]
    fn instances_are_multi_typed() {
        let t = dataset("wine").unwrap();
        let mut types_of: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (s, p, _) in t.iter() {
            if p == "type" {
                *types_of.entry(s).or_insert(0) += 1;
            }
        }
        assert!(
            types_of.values().any(|&d| d > 1),
            "some instance has 2+ types"
        );
    }
}
