//! Valiant's algorithm \[25\]: string recognition via divide-and-conquer
//! transitive closure of an upper-triangular matrix.
//!
//! For a word `w` of length `n`, positions are `0..=n` and the
//! `(n+1)×(n+1)` matrix `T` holds at `(i, j)` the nonterminals deriving
//! `w[i..j]`; the superdiagonal is initialized from terminal rules and the
//! closure `a⁺` fills the rest. Valiant's insight is to organize the
//! closure so all heavy lifting happens inside large submatrix
//! multiplications (here over the §2 set algebra, decomposable into
//! Boolean products).
//!
//! The recursion follows Okhotin's presentation \[19\]:
//!
//! * `compute(l, r)` closes the square block `l..=r` by recursing on the
//!   two halves and then `complete`-ing the off-diagonal block, after
//!   **seeding** the products through the single middle index `m`
//!   (the invariant: before `complete(B)`, `P[B]` holds all products
//!   through indices *between* B's row range and column range);
//! * `complete(rows, cols)` fills a rectangular block quadrant by
//!   quadrant (bottom-left first — closest to the diagonal), injecting
//!   the cross products between quadrants as submatrix multiplications.
//!
//! Equivalence with CYK is exhaustively property-tested; equivalence of
//! the underlying closure definitions is Theorem 1 (see
//! `cfpq_matrix::closure`).

use cfpq_grammar::{Term, Wcnf};
use cfpq_matrix::SetMatrix;
use std::ops::Range;

/// Parses `word`, returning the full recognition matrix `T` (size
/// `(n+1)²`); `T\[0\][n]` holds every nonterminal deriving the word.
pub fn valiant_parse(grammar: &Wcnf, word: &[Term]) -> SetMatrix {
    let n = word.len();
    let size = n + 1;
    let mut t = SetMatrix::empty(size, grammar.n_nts());
    let mut p = SetMatrix::empty(size, grammar.n_nts());

    let by_term = grammar.nts_by_terminal();
    for (i, w) in word.iter().enumerate() {
        for &nt in &by_term[w.index()] {
            t.insert(i as u32, i as u32 + 1, nt);
        }
    }
    if n >= 2 {
        compute(&mut t, &mut p, grammar, 0, n);
    }
    t
}

/// True if `start` derives the full word.
pub fn valiant_recognize(grammar: &Wcnf, start: cfpq_grammar::Nt, word: &[Term]) -> bool {
    if word.is_empty() {
        return grammar.nullable.contains(&start);
    }
    let t = valiant_parse(grammar, word);
    t.contains(0, word.len() as u32, start)
}

/// Closes the diagonal block `l..=r`: computes `T[i][j]` for all
/// `l ≤ i < j ≤ r`, assuming nothing outside is needed.
fn compute(t: &mut SetMatrix, p: &mut SetMatrix, g: &Wcnf, l: usize, r: usize) {
    if r - l <= 1 {
        return; // single superdiagonal cell, set at init
    }
    let m = (l + r) / 2;
    compute(t, p, g, l, m);
    compute(t, p, g, m, r);
    // Seed the products through the middle index m for the whole
    // off-diagonal block: rows [l, m), cols (m, r].
    product_into(t, p, g, l..m, m..m + 1, m + 1..r + 1);
    complete(t, p, g, l, m, m, r);
}

/// Completes the rectangular block rows `[l1, r1)` × cols `(l2, r2]`.
///
/// Precondition: every `T[i][j]` with `l1 ≤ i < j ≤ r2` *outside* the
/// block is final, and `P` already holds, for each block cell, all
/// products through split points `k ∈ [r1, l2]` (the "middle" between the
/// row range and the column range).
fn complete(
    t: &mut SetMatrix,
    p: &mut SetMatrix,
    g: &Wcnf,
    l1: usize,
    r1: usize,
    l2: usize,
    r2: usize,
) {
    let nr = r1 - l1;
    let nc = r2 - l2;
    if nr == 0 || nc == 0 {
        return;
    }
    if nr == 1 && nc == 1 {
        // All split points are accumulated; finalize the cell.
        for nt in p.cell(l1 as u32, r2 as u32) {
            t.insert(l1 as u32, r2 as u32, nt);
        }
        return;
    }
    let rm = l1 + nr / 2; // row split: [l1, rm) top, [rm, r1) bottom
    let cm = l2 + nc / 2; // col split: (l2, cm] left, (cm, r2] right

    // B1 (bottom-left) is closest to the diagonal: complete it first.
    complete(t, p, g, rm, r1, l2, cm);
    // B2 (top-left) additionally needs split points k ∈ [rm, r1): the
    // left factor T[[l1,rm) × [rm,r1)] is inside the already-computed
    // triangle, the right factor is the just-completed B1.
    product_into(t, p, g, l1..rm, rm..r1, l2 + 1..cm + 1);
    complete(t, p, g, l1, rm, l2, cm);
    // B3 (bottom-right) needs k ∈ (l2, cm]: left factor B1, right factor
    // inside the computed triangle.
    product_into(t, p, g, rm..r1, l2 + 1..cm + 1, cm + 1..r2 + 1);
    complete(t, p, g, rm, r1, cm, r2);
    // B4 (top-right) needs both k ∈ [rm, r1) (via B3) and k ∈ (l2, cm]
    // (via B2).
    product_into(t, p, g, l1..rm, rm..r1, cm + 1..r2 + 1);
    product_into(t, p, g, l1..rm, l2 + 1..cm + 1, cm + 1..r2 + 1);
    complete(t, p, g, l1, rm, cm, r2);
}

/// `P[i][j] ∪= f(T[i][k], T[k][j])` for all `i ∈ rows`, `k ∈ ks`,
/// `j ∈ cols` — a rectangular submatrix multiplication over the §2
/// algebra. This is the procedure Valiant offloads to fast matrix
/// multiplication; here it is the straightforward kernel (the asymptotic
/// speedup is not the point of this baseline, its recursion structure is).
fn product_into(
    t: &SetMatrix,
    p: &mut SetMatrix,
    g: &Wcnf,
    rows: Range<usize>,
    ks: Range<usize>,
    cols: Range<usize>,
) {
    for i in rows {
        for k in ks.clone() {
            if t.cell_is_empty(i as u32, k as u32) {
                continue;
            }
            for j in cols.clone() {
                if t.cell_is_empty(k as u32, j as u32) {
                    continue;
                }
                for rule in &g.binary_rules {
                    if t.contains(i as u32, k as u32, rule.left)
                        && t.contains(k as u32, j as u32, rule.right)
                    {
                        p.insert(i as u32, j as u32, rule.lhs);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::cyk::CykTable;
    use cfpq_grammar::random::{random_wcnf, sample_word, RandomGrammarConfig};
    use cfpq_grammar::{Cfg, Nt};

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    fn word(g: &Wcnf, names: &[&str]) -> Vec<Term> {
        names
            .iter()
            .map(|n| g.symbols.get_term(n).unwrap())
            .collect()
    }

    /// Full-table equivalence with CYK: every cell, every nonterminal.
    fn assert_matches_cyk(g: &Wcnf, w: &[Term]) {
        let t = valiant_parse(g, w);
        let cyk = CykTable::build(g, w);
        for i in 0..w.len() {
            for j in (i + 1)..=w.len() {
                for nt in 0..g.n_nts() {
                    let nt = Nt(nt as u32);
                    let expect = cyk.get(j - i - 1, i, nt);
                    assert_eq!(
                        t.contains(i as u32, j as u32, nt),
                        expect,
                        "cell ({i},{j}) nt {nt:?} word len {}",
                        w.len()
                    );
                }
            }
        }
    }

    #[test]
    fn anbn_recognition() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(valiant_recognize(&g, s, &word(&g, &["a", "b"])));
        assert!(valiant_recognize(&g, s, &word(&g, &["a", "a", "b", "b"])));
        assert!(!valiant_recognize(&g, s, &word(&g, &["a", "b", "b"])));
        assert!(!valiant_recognize(&g, s, &[]));
    }

    #[test]
    fn full_table_matches_cyk_on_fixed_words() {
        let g = wcnf("S -> a S b | a b | S S");
        for w in [
            vec!["a", "b"],
            vec!["a", "a", "b", "b"],
            vec!["a", "b", "a", "b"],
            vec!["a", "a", "b", "b", "a", "b"],
            vec!["a", "a", "a", "b"],
            vec!["b", "a"],
            vec!["a", "a", "b", "b", "a", "b", "a"], // odd length
        ] {
            assert_matches_cyk(&g, &word(&g, &w));
        }
    }

    #[test]
    fn dyck_words() {
        let g = wcnf("S -> S S | ( S ) | ( )");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(valiant_recognize(
            &g,
            s,
            &word(&g, &["(", "(", ")", "(", ")", ")"])
        ));
        assert!(!valiant_recognize(&g, s, &word(&g, &["(", ")", ")"])));
        assert_matches_cyk(&g, &word(&g, &["(", "(", ")", "(", ")", ")", "(", ")"]));
    }

    #[test]
    fn single_symbol_word() {
        let g = wcnf("S -> a");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(valiant_recognize(&g, s, &word(&g, &["a"])));
    }

    #[test]
    fn nullable_start_accepts_empty() {
        let g = wcnf("S -> a S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(valiant_recognize(&g, s, &[]));
    }

    #[test]
    fn random_grammars_match_cyk() {
        // Dozens of random grammar/word instances, every table cell.
        let mut checked = 0;
        for seed in 0..40u64 {
            let g = random_wcnf(seed, RandomGrammarConfig::default());
            // Positive-ish words sampled from the language...
            if let Some(w) = sample_word(&g, g.start, 24, seed ^ 0x5a5a) {
                if !w.is_empty() && w.len() <= 12 {
                    assert_matches_cyk(&g, &w);
                    checked += 1;
                }
            }
            // ...and arbitrary noise words.
            let noise: Vec<Term> = (0..(seed % 9 + 1))
                .map(|i| Term(((seed.wrapping_mul(31).wrapping_add(i * 7)) % 3) as u32))
                .collect();
            assert_matches_cyk(&g, &noise);
            checked += 1;
        }
        assert!(checked > 40);
    }

    #[test]
    fn agrees_with_algorithm1_on_word_chains() {
        // The bridge result: Valiant on the string == Algorithm 1 on the
        // chain encoding of the string.
        use cfpq_core::relational::solve_on_engine;
        use cfpq_graph::generators;
        use cfpq_matrix::DenseEngine;
        let g = wcnf("S -> a S b | a b | S S");
        let names = ["a", "a", "b", "b", "a", "b"];
        let w = word(&g, &names);
        let t = valiant_parse(&g, &w);
        let graph = generators::word_chain(&names);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            let valiant_pairs: Vec<(u32, u32)> = (0..=names.len() as u32)
                .flat_map(|i| {
                    let t = &t;
                    ((i + 1)..=names.len() as u32)
                        .filter(move |&j| t.contains(i, j, nt))
                        .map(move |j| (i, j))
                })
                .collect();
            assert_eq!(valiant_pairs, idx.pairs(nt), "nt {nt:?}");
        }
    }
}
