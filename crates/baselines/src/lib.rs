//! # cfpq-baselines
//!
//! Every comparison algorithm the paper evaluates against or builds on,
//! implemented from scratch:
//!
//! * [`hellings`] — the classic cubic worklist algorithm for relational
//!   CFPQ (Hellings \[11\]; also the algorithmic core of Zhang et al. \[30\]).
//! * [`gll`] — GLL-based CFPQ (Grigorev & Ragozina \[9\]): descriptor-driven
//!   generalized top-down parsing with a graph-structured stack,
//!   generalized from strings to graphs. This is the `GLL` column of
//!   Tables 1 and 2.
//! * [`valiant`] — Valiant's sub-cubic string recognizer \[25\]: the
//!   divide-and-conquer computation of the transitive closure `a⁺` of an
//!   upper-triangular matrix with matrix multiplication as the primitive.
//!   The paper's Algorithm 1 generalizes this closure to arbitrary
//!   (cyclic) graphs; on word chains the two must and do agree.
//!
//! All baselines share the [`TripleStore`] result shape so tests can
//! compare them against each other and against `cfpq-core`.

pub mod gll;
pub mod hellings;
pub mod rsm;
pub mod valiant;

use cfpq_grammar::Nt;
use std::collections::BTreeSet;

/// A set of result triples `(A, i, j)` grouped per nonterminal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TripleStore {
    sets: Vec<BTreeSet<(u32, u32)>>,
}

impl TripleStore {
    /// Creates a store for `n_nts` nonterminals.
    pub fn new(n_nts: usize) -> Self {
        Self {
            sets: vec![BTreeSet::new(); n_nts],
        }
    }

    /// Inserts `(nt, i, j)`; returns `true` if it was new.
    pub fn insert(&mut self, nt: Nt, i: u32, j: u32) -> bool {
        self.sets[nt.index()].insert((i, j))
    }

    /// True if `(i, j) ∈ R_nt`.
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.sets[nt.index()].contains(&(i, j))
    }

    /// `R_nt` as sorted pairs.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        self.sets[nt.index()].iter().copied().collect()
    }

    /// `|R_nt|`.
    pub fn count(&self, nt: Nt) -> usize {
        self.sets[nt.index()].len()
    }

    /// Total number of triples.
    pub fn total(&self) -> usize {
        self.sets.iter().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_store_basics() {
        let mut s = TripleStore::new(2);
        assert!(s.insert(Nt(0), 1, 2));
        assert!(!s.insert(Nt(0), 1, 2));
        assert!(s.insert(Nt(1), 1, 2));
        assert!(s.contains(Nt(0), 1, 2));
        assert!(!s.contains(Nt(0), 2, 1));
        assert_eq!(s.pairs(Nt(0)), vec![(1, 2)]);
        assert_eq!(s.total(), 2);
        assert_eq!(s.count(Nt(1)), 1);
    }
}
