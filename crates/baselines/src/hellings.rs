//! Hellings' worklist algorithm for relational CFPQ \[11\].
//!
//! The pre-matrix state of the art (§3): a dynamic-transitive-closure-style
//! worklist over result triples `(A, i, j)`. When a new triple for `B`
//! arrives, every rule `A → BC` joins it with known `C`-triples starting
//! at `j`, and every rule `A → CB` joins with known `C`-triples ending at
//! `i`. Complexity `O(|V|³·|P|)` with small constants on sparse answers —
//! the natural oracle for the matrix solvers.

use crate::TripleStore;
use cfpq_grammar::Wcnf;
use cfpq_graph::Graph;
use std::collections::VecDeque;

/// Runs Hellings' algorithm; the result covers **every** nonterminal (same
/// observable as Algorithm 1).
pub fn solve_hellings(graph: &Graph, grammar: &Wcnf) -> TripleStore {
    let n = graph.n_nodes();
    let n_nts = grammar.n_nts();
    let mut store = TripleStore::new(n_nts);
    // succ[A][i] = targets j with (A, i, j); pred[A][j] = sources.
    let mut succ: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; n_nts];
    let mut pred: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; n_nts];
    let mut queue: VecDeque<(u32, u32, u32)> = VecDeque::new(); // (nt, i, j)

    let push = |store: &mut TripleStore,
                succ: &mut Vec<Vec<Vec<u32>>>,
                pred: &mut Vec<Vec<Vec<u32>>>,
                queue: &mut VecDeque<(u32, u32, u32)>,
                nt: cfpq_grammar::Nt,
                i: u32,
                j: u32| {
        if store.insert(nt, i, j) {
            succ[nt.index()][i as usize].push(j);
            pred[nt.index()][j as usize].push(i);
            queue.push_back((nt.0, i, j));
        }
    };

    // Initialization from terminal rules, as in Algorithm 1 lines 6-7.
    let term_of: Vec<Option<cfpq_grammar::Term>> = graph
        .labels()
        .map(|(_, name)| grammar.symbols.get_term(name))
        .collect();
    let by_term = grammar.nts_by_terminal();
    for e in graph.edges() {
        if let Some(term) = term_of[e.label.index()] {
            for &nt in &by_term[term.index()] {
                push(
                    &mut store, &mut succ, &mut pred, &mut queue, nt, e.from, e.to,
                );
            }
        }
    }

    let rules_by_left = grammar.rules_by_left();
    let rules_by_right = grammar.rules_by_right();

    while let Some((b, i, j)) = queue.pop_front() {
        // New (B, i, j). Rules A -> B C: join with (C, j, k).
        for &(a, c) in &rules_by_left[b as usize] {
            let continuations: Vec<u32> = succ[c.index()][j as usize].clone();
            for k in continuations {
                push(&mut store, &mut succ, &mut pred, &mut queue, a, i, k);
            }
        }
        // Rules A -> C B: join with (C, k, i).
        for &(a, c) in &rules_by_right[b as usize] {
            let starts: Vec<u32> = pred[c.index()][i as usize].clone();
            for k in starts {
                push(&mut store, &mut succ, &mut pred, &mut queue, a, k, j);
            }
        }
    }

    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::{Cfg, Nt};
    use cfpq_graph::generators;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn anbn_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let store = solve_hellings(&graph, &g);
        assert_eq!(store.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn cyclic_graph_terminates_and_is_sound() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let store = solve_hellings(&graph, &g);
        assert!(store.contains(s, 0, 0));
        assert!(store.total() > 0);
    }

    #[test]
    fn paper_example_relations() {
        let g = cfpq_grammar::queries::fig4_normal_form()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let store = solve_hellings(&graph, &g);
        let nt = |name: &str| g.symbols.get_nt(name).unwrap();
        assert_eq!(store.pairs(nt("S")), vec![(0, 0), (0, 2), (1, 2)]);
        assert_eq!(store.pairs(nt("S5")), vec![(0, 0), (1, 0)]);
        assert_eq!(store.pairs(nt("S6")), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = wcnf("S -> a b");
        let graph = Graph::new(3);
        let store = solve_hellings(&graph, &g);
        assert_eq!(store.total(), 0);
    }

    #[test]
    fn self_loop_growth() {
        // a-loop and b-loop on one node: S holds at (0,0).
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let store = solve_hellings(&graph, &g);
        assert!(store.contains(s, 0, 0));
    }

    #[test]
    fn matches_matrix_solver_on_random_graphs() {
        use cfpq_core::relational::solve_on_engine;
        use cfpq_matrix::SparseEngine;
        for seed in 0..8u64 {
            let g = wcnf("S -> a S b | a b | S S");
            let graph = generators::random_graph(9, 24, &["a", "b"], seed);
            let store = solve_hellings(&graph, &g);
            let idx = solve_on_engine(&SparseEngine, &graph, &g);
            for i in 0..g.n_nts() {
                let nt = Nt(i as u32);
                assert_eq!(store.pairs(nt), idx.pairs(nt), "seed {seed}, nt {nt:?}");
            }
        }
    }
}
