//! GLL-based context-free path querying \[9\] — the paper's `GLL` column.
//!
//! Scott & Johnstone's GLL parsing \[22\] generalizes recursive descent to
//! arbitrary context-free grammars using *descriptors* and a
//! *graph-structured stack* (GSS). Grigorev & Ragozina \[9\] generalize the
//! input from a string to a graph: the "input pointer" becomes a graph
//! node, and reading a terminal follows every matching out-edge.
//!
//! This implementation produces the relational answer (triples
//! `(A, callPos, v)` recorded at every GSS pop) rather than an SPPF — the
//! configuration the paper benchmarks against. Unlike the matrix solvers
//! it works on the *original* grammar (no CNF required) and naturally
//! supports ε-rules (an ε-completion pops immediately, yielding the
//! diagonal triple `(A, v, v)`).
//!
//! Data structures (standard GLL, graph-generalized):
//! * descriptor `(slot, gssNode, v)` — slot is a dotted rule `A → α · β`;
//! * GSS node `(A, callPos)` with edges labeled by return slots;
//! * popped set `P(gssNode)` for the re-entrant completion replay.

use crate::TripleStore;
use cfpq_grammar::cfg::{Cfg, Symbol};
use cfpq_grammar::Nt;
use cfpq_graph::{Graph, Label};
use std::collections::{HashMap, HashSet, VecDeque};

/// A grammar slot: production index + dot position (0..=rhs.len()).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Slot {
    rule: u32,
    dot: u32,
}

/// Interned GSS node id.
type GssId = u32;

struct Gss {
    /// Key (nonterminal, call position) → id.
    by_key: HashMap<(Nt, u32), GssId>,
    keys: Vec<(Nt, u32)>,
    /// Outgoing edges: (return slot, parent GSS node).
    edges: Vec<Vec<(Slot, GssId)>>,
    /// Popped positions per node.
    popped: Vec<Vec<u32>>,
}

impl Gss {
    fn new() -> Self {
        Self {
            by_key: HashMap::new(),
            keys: Vec::new(),
            edges: Vec::new(),
            popped: Vec::new(),
        }
    }

    fn node(&mut self, nt: Nt, pos: u32) -> (GssId, bool) {
        if let Some(&id) = self.by_key.get(&(nt, pos)) {
            return (id, false);
        }
        let id = self.keys.len() as GssId;
        self.by_key.insert((nt, pos), id);
        self.keys.push((nt, pos));
        self.edges.push(Vec::new());
        self.popped.push(Vec::new());
        (id, true)
    }
}

/// The GLL-based CFPQ solver.
pub struct GllSolver<'g> {
    cfg: &'g Cfg,
    /// Productions grouped per nonterminal (indices into
    /// `cfg.productions`).
    alternatives: Vec<Vec<u32>>,
    /// Graph label ↔ grammar terminal match, by label index.
    term_of_label: Vec<Option<cfpq_grammar::Term>>,
}

impl<'g> GllSolver<'g> {
    /// Prepares a solver for `cfg` over `graph`'s label vocabulary.
    pub fn new(cfg: &'g Cfg, graph: &Graph) -> Self {
        let n_nts = cfg.symbols.n_nts();
        let mut alternatives: Vec<Vec<u32>> = vec![Vec::new(); n_nts];
        for (idx, p) in cfg.productions.iter().enumerate() {
            alternatives[p.lhs.index()].push(idx as u32);
        }
        let term_of_label = graph
            .labels()
            .map(|(_, name)| cfg.symbols.get_term(name))
            .collect();
        Self {
            cfg,
            alternatives,
            term_of_label,
        }
    }

    /// Evaluates the query for `start` from **every** graph node,
    /// returning all discovered triples (for `start` and, as a byproduct
    /// of the GSS, every nonterminal reachable in the top-down search).
    pub fn solve(&self, graph: &Graph, start: Nt) -> TripleStore {
        let mut store = TripleStore::new(self.cfg.symbols.n_nts());
        let mut gss = Gss::new();
        let mut seen: HashSet<(Slot, GssId, u32)> = HashSet::new();
        let mut work: VecDeque<(Slot, GssId, u32)> = VecDeque::new();

        let enqueue = |seen: &mut HashSet<(Slot, GssId, u32)>,
                       work: &mut VecDeque<(Slot, GssId, u32)>,
                       d: (Slot, GssId, u32)| {
            if seen.insert(d) {
                work.push_back(d);
            }
        };

        // Seed: call `start` at every node.
        for v in 0..graph.n_nodes() as u32 {
            let (root, _) = gss.node(start, v);
            for &rule in &self.alternatives[start.index()] {
                enqueue(&mut seen, &mut work, (Slot { rule, dot: 0 }, root, v));
            }
        }

        while let Some((slot, u, v)) = work.pop_front() {
            let prod = &self.cfg.productions[slot.rule as usize];
            if (slot.dot as usize) < prod.rhs.len() {
                match prod.rhs[slot.dot as usize] {
                    Symbol::T(t) => {
                        // Follow every matching out-edge of v.
                        for &(label, w) in graph.out_edges(v) {
                            if self.label_matches(label, t) {
                                enqueue(
                                    &mut seen,
                                    &mut work,
                                    (
                                        Slot {
                                            rule: slot.rule,
                                            dot: slot.dot + 1,
                                        },
                                        u,
                                        w,
                                    ),
                                );
                            }
                        }
                    }
                    Symbol::N(b) => {
                        // create(L, u, v): GSS node for (B, v), edge back
                        // to u labeled with the return slot.
                        let ret = Slot {
                            rule: slot.rule,
                            dot: slot.dot + 1,
                        };
                        let (w, _) = gss.node(b, v);
                        if !gss.edges[w as usize].contains(&(ret, u)) {
                            gss.edges[w as usize].push((ret, u));
                            // Replay earlier pops of w through this new edge.
                            let popped: Vec<u32> = gss.popped[w as usize].clone();
                            for z in popped {
                                enqueue(&mut seen, &mut work, (ret, u, z));
                            }
                        }
                        for &rule in &self.alternatives[b.index()] {
                            enqueue(&mut seen, &mut work, (Slot { rule, dot: 0 }, w, v));
                        }
                    }
                }
            } else {
                // pop(u, v): the nonterminal of u completed from its call
                // position to v.
                let (a, call_pos) = gss.keys[u as usize];
                store.insert(a, call_pos, v);
                if !gss.popped[u as usize].contains(&v) {
                    gss.popped[u as usize].push(v);
                    let edges: Vec<(Slot, GssId)> = gss.edges[u as usize].clone();
                    for (ret, parent) in edges {
                        enqueue(&mut seen, &mut work, (ret, parent, v));
                    }
                }
            }
        }

        store
    }

    fn label_matches(&self, label: Label, t: cfpq_grammar::Term) -> bool {
        self.term_of_label[label.index()] == Some(t)
    }
}

/// Convenience wrapper: solve `cfg` (using its start nonterminal) over
/// `graph`.
pub fn solve_gll(graph: &Graph, cfg: &Cfg) -> TripleStore {
    let start = cfg.start.expect("grammar must have a start nonterminal");
    GllSolver::new(cfg, graph).solve(graph, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::queries;
    use cfpq_graph::generators;

    #[test]
    fn anbn_on_chain() {
        let cfg = Cfg::parse("S -> a S b | a b").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let store = solve_gll(&graph, &cfg);
        assert_eq!(store.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn left_recursion_terminates() {
        // Left recursion is the classic recursive-descent killer; the GSS
        // must handle it.
        let cfg = Cfg::parse("S -> S a | a").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::chain(4, "a");
        let store = solve_gll(&graph, &cfg);
        // Every (i, j) with i < j is an a^+ span.
        let mut expect = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5u32 {
                expect.push((i, j));
            }
        }
        assert_eq!(store.pairs(s), expect);
    }

    #[test]
    fn epsilon_rules_give_diagonal() {
        let cfg = Cfg::parse("S -> a S | eps").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let store = solve_gll(&graph, &cfg);
        // ε at every node + suffix reads.
        assert_eq!(
            store.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn paper_example_start_relation() {
        // GLL works on the original (non-CNF) Q1 grammar directly.
        let cfg = queries::query1();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::paper_example();
        let store = solve_gll(&graph, &cfg);
        assert_eq!(store.pairs(s), vec![(0, 0), (0, 2), (1, 2)]);
    }

    #[test]
    fn cyclic_input_terminates() {
        let cfg = Cfg::parse("S -> a S b | a b").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let store = solve_gll(&graph, &cfg);
        assert!(store.contains(s, 0, 0));
    }

    #[test]
    fn matches_matrix_solver_on_random_graphs() {
        use cfpq_core::relational::solve_on_engine;
        use cfpq_grammar::cnf::CnfOptions;
        use cfpq_matrix::SparseEngine;
        for seed in 0..8u64 {
            let cfg = Cfg::parse("S -> a S b | a b | S S").unwrap();
            let graph = generators::random_graph(8, 20, &["a", "b"], seed);
            let store = solve_gll(&graph, &cfg);
            let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
            let idx = solve_on_engine(&SparseEngine, &graph, &wcnf);
            let s_gll = cfg.symbols.get_nt("S").unwrap();
            let s_mat = wcnf.symbols.get_nt("S").unwrap();
            assert_eq!(
                store.pairs(s_gll),
                idx.pairs(s_mat),
                "R_S mismatch on seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph_no_answers() {
        let cfg = Cfg::parse("S -> a").unwrap();
        let graph = Graph::new(3);
        let store = solve_gll(&graph, &cfg);
        let s = cfg.symbols.get_nt("S").unwrap();
        assert!(store.pairs(s).is_empty());
    }
}
