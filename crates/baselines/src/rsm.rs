//! The worklist RSM evaluator — kept as a differential oracle.
//!
//! The RSM IR itself ([`Rsm`], [`RsmBox`], trie construction) now lives
//! in [`cfpq_grammar::rsm`], where the unified compiled-query pipeline
//! (`cfpq-core::compile`) lowers it onto the matrix fixpoint; this
//! module keeps the original worklist evaluation — configurations
//! `(box, entry node, state, current node)` with call-site memoization —
//! purely as a cross-check. Like `solve_regular` for NFAs, [`solve_rsm`]
//! survives only to referee the pipeline: tests assert that the
//! Kronecker-style lowering and this GLL-flavoured traversal agree
//! triple-for-triple.

use crate::TripleStore;
use cfpq_grammar::cfg::{Cfg, Symbol};
use cfpq_grammar::{Nt, Term};
use cfpq_graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

pub use cfpq_grammar::rsm::{Rsm, RsmBox, StateId};

/// Compatibility alias for the promoted box type.
pub type Box_ = RsmBox;

/// Evaluates RSM reachability for `start` from every graph node.
///
/// Configurations `(A, u, q, v)`: box `A` entered at graph node `u`,
/// currently in state `q` at node `v`. Nonterminal transitions suspend
/// into call contexts keyed by `(B, v)` and are resumed for every result
/// `(B, v, w)` — the RSM analogue of the GSS pop replay.
///
/// Note the ε-semantics: a nullable box completes at its entry node, so
/// nullable nonterminals report the diagonal `(A, v, v)` — the same
/// convention as `SolveOptions::nullable_diagonal` on the matrix path.
pub fn solve_rsm(graph: &Graph, cfg: &Cfg, rsm: &Rsm, start: Nt) -> TripleStore {
    let mut store = TripleStore::new(cfg.symbols.n_nts());
    // term_of[label] = grammar terminal with the same name, if any.
    let term_of: Vec<Option<Term>> = graph
        .labels()
        .map(|(_, name)| cfg.symbols.get_term(name))
        .collect();

    type Config = (u32, NodeId, StateId, NodeId); // (box/nt, entry, state, node)
    type Context = (u32, NodeId, StateId); // suspended caller: (box, entry, return state)
    let mut seen: HashSet<Config> = HashSet::new();
    let mut work: VecDeque<Config> = VecDeque::new();
    // Contexts waiting on (B, v): resume (A, u, q', ·) at every result w.
    let mut waiting: HashMap<(u32, NodeId), Vec<Context>> = HashMap::new();
    // Started boxes, to avoid re-entry.
    let mut started: HashSet<(u32, NodeId)> = HashSet::new();
    // Known results per (B, v) for replay.
    let mut results_at: HashMap<(u32, NodeId), Vec<NodeId>> = HashMap::new();

    let enqueue = |seen: &mut HashSet<Config>, work: &mut VecDeque<Config>, c: Config| {
        if seen.insert(c) {
            work.push_back(c);
        }
    };

    for v in 0..graph.n_nodes() as NodeId {
        started.insert((start.0, v));
        for &e in &rsm.boxes[start.index()].entries {
            enqueue(&mut seen, &mut work, (start.0, v, e, v));
        }
    }

    while let Some((a, u, q, v)) = work.pop_front() {
        let b = &rsm.boxes[a as usize];
        if b.is_final(q) {
            // Completed A from u to v.
            if store.insert(Nt(a), u, v) {
                results_at.entry((a, u)).or_default().push(v);
                if let Some(contexts) = waiting.get(&(a, u)) {
                    for &(ca, cu, cq) in &contexts.clone() {
                        enqueue(&mut seen, &mut work, (ca, cu, cq, v));
                    }
                }
            }
        }
        for (sym, q2) in b.from_state(q) {
            match sym {
                Symbol::T(t) => {
                    for &(label, w) in graph.out_edges(v) {
                        if term_of[label.index()] == Some(t) {
                            enqueue(&mut seen, &mut work, (a, u, q2, w));
                        }
                    }
                }
                Symbol::N(callee) => {
                    // Suspend into a call of `callee` at v.
                    waiting.entry((callee.0, v)).or_default().push((a, u, q2));
                    if started.insert((callee.0, v)) {
                        for &e in &rsm.boxes[callee.index()].entries {
                            enqueue(&mut seen, &mut work, (callee.0, v, e, v));
                        }
                    }
                    if let Some(ws) = results_at.get(&(callee.0, v)) {
                        for &w in &ws.clone() {
                            enqueue(&mut seen, &mut work, (a, u, q2, w));
                        }
                    }
                }
            }
        }
    }

    store
}

/// Convenience: build the RSM and solve using the grammar's start symbol.
pub fn solve_rsm_cfg(graph: &Graph, cfg: &Cfg) -> TripleStore {
    let rsm = Rsm::from_cfg(cfg);
    let start = cfg.start.expect("grammar must have a start nonterminal");
    solve_rsm(graph, cfg, &rsm, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_graph::generators;

    #[test]
    fn trie_shares_prefixes() {
        // Q1: both subClassOf_r alternatives share their first
        // transition, both type_r alternatives share theirs.
        let cfg = cfpq_grammar::queries::query1();
        let rsm = Rsm::from_cfg(&cfg);
        let b = &rsm.boxes[0];
        // Naive path-per-production: 4 productions × 2-3 symbols = 10
        // interior states + entry; the trie merges the two 2-symbol
        // prefixes into the longer alternatives' paths.
        assert!(
            b.n_states < 11,
            "expected prefix sharing, got {} states",
            b.n_states
        );
        // Entry has exactly two outgoing transitions (subClassOf_r,
        // type_r), not four.
        assert_eq!(b.from_state(0).count(), 2);
    }

    #[test]
    fn anbn_on_chain() {
        let cfg = Cfg::parse("S -> a S b | a b").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let store = solve_rsm_cfg(&graph, &cfg);
        assert_eq!(store.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn left_recursion_terminates() {
        let cfg = Cfg::parse("S -> S a | a").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::chain(4, "a");
        let store = solve_rsm_cfg(&graph, &cfg);
        let mut expect = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5u32 {
                expect.push((i, j));
            }
        }
        assert_eq!(store.pairs(s), expect);
    }

    #[test]
    fn epsilon_production_gives_diagonal() {
        let cfg = Cfg::parse("S -> a S | eps").unwrap();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let store = solve_rsm_cfg(&graph, &cfg);
        assert_eq!(
            store.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn paper_example_start_relation() {
        let cfg = cfpq_grammar::queries::query1();
        let s = cfg.symbols.get_nt("S").unwrap();
        let graph = generators::paper_example();
        let store = solve_rsm_cfg(&graph, &cfg);
        assert_eq!(store.pairs(s), vec![(0, 0), (0, 2), (1, 2)]);
    }

    #[test]
    fn matches_gll_and_matrix_on_random_graphs() {
        use crate::gll::solve_gll;
        use cfpq_core::relational::solve_on_engine;
        use cfpq_grammar::cnf::CnfOptions;
        use cfpq_matrix::SparseEngine;
        for seed in 0..8u64 {
            let cfg = Cfg::parse("S -> a S b | a b | S S").unwrap();
            let graph = generators::random_graph(8, 20, &["a", "b"], seed);
            let rsm_store = solve_rsm_cfg(&graph, &cfg);
            let gll_store = solve_gll(&graph, &cfg);
            let s = cfg.symbols.get_nt("S").unwrap();
            assert_eq!(
                rsm_store.pairs(s),
                gll_store.pairs(s),
                "rsm vs gll, seed {seed}"
            );
            let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
            let idx = solve_on_engine(&SparseEngine, &graph, &wcnf);
            let s_w = wcnf.symbols.get_nt("S").unwrap();
            assert_eq!(
                rsm_store.pairs(s),
                idx.pairs(s_w),
                "rsm vs matrix, seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let cfg = Cfg::parse("S -> a").unwrap();
        let graph = Graph::new(2);
        let store = solve_rsm_cfg(&graph, &cfg);
        assert_eq!(store.total(), 0);
    }
}
