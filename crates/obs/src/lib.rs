//! # cfpq-obs
//!
//! Dependency-free observability substrate for the CFPQ stack: span
//! tracing with typed attributes, a metrics registry (counters, gauges,
//! log-bucketed histograms) with Prometheus-text and JSON exposition,
//! and a chrome://tracing exporter.
//!
//! The design goal is *zero cost when off*: instrumentation sites call
//! [`span`], which performs a single thread-local read and returns an
//! inert guard when no [`Recorder`] is installed. Attribute values that
//! are expensive to compute (e.g. `nnz` popcounts) must be gated behind
//! [`SpanGuard::is_recording`], so an uninstrumented run does no extra
//! work beyond one predictable branch per site.
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//! let collector = Arc::new(cfpq_obs::SpanCollector::new());
//! let _session = cfpq_obs::install(collector.clone());
//! {
//!     let mut sp = cfpq_obs::span("solve");
//!     if sp.is_recording() {
//!         sp.attr_u64("nnz", 42);
//!     }
//! }
//! assert_eq!(collector.spans().len(), 1);
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use trace::{validate_chrome_trace, Span, SpanCollector};

use std::cell::RefCell;
use std::sync::Arc;

/// Identifier of a span issued by a [`Recorder`].
///
/// `SpanId::NONE` (zero) is the absent id: it names "no parent" for
/// root spans and is what a disabled recorder hands out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span id (no parent / recorder disabled).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the absent id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts: `nnz`, `sweep`, `products`, ...).
    U64(u64),
    /// Floating point (ratios, milliseconds).
    F64(f64),
    /// Static string (representation names, strategies).
    Str(&'static str),
    /// Owned string (per-nonterminal breakdowns).
    Text(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

/// A key/value attribute attached to a span at close time.
pub type Attr = (&'static str, AttrValue);

/// Sink for span events.
///
/// Implementations must be cheap and non-blocking: `start`/`end` run on
/// hot paths (including device pool threads). The contract:
///
/// * `start` issues a fresh id (never `SpanId::NONE` while enabled) and
///   records the parent link; `end` closes the span and attaches its
///   attributes.
/// * `end` is called exactly once per `start`, on an arbitrary thread.
/// * A disabled recorder (`is_enabled() == false`) returns
///   `SpanId::NONE` from `start` and ignores `end`.
pub trait Recorder: Send + Sync {
    /// Whether spans are being captured. Callers use this to skip
    /// attribute computation entirely.
    fn is_enabled(&self) -> bool;
    /// Open a span. `parent` is `SpanId::NONE` for roots.
    fn start(&self, name: &'static str, parent: SpanId) -> SpanId;
    /// Close a span, attaching its attributes.
    fn end(&self, id: SpanId, attrs: Vec<Attr>);
}

/// The zero-cost default recorder: captures nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn start(&self, _name: &'static str, _parent: SpanId) -> SpanId {
        SpanId::NONE
    }
    fn end(&self, _id: SpanId, _attrs: Vec<Attr>) {}
}

struct ThreadContext {
    recorder: Arc<dyn Recorder>,
    current: SpanId,
}

thread_local! {
    static CONTEXT: RefCell<Option<ThreadContext>> = const { RefCell::new(None) };
}

/// Install `recorder` as this thread's active recorder.
///
/// Spans opened via [`span`] on this thread (and on device pool threads
/// the caller launches work onto — the pool propagates the context) go
/// to it until the returned guard drops, which restores whatever was
/// installed before. Guards nest LIFO.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub fn install(recorder: Arc<dyn Recorder>) -> InstallGuard {
    install_with_parent(recorder, SpanId::NONE)
}

/// Like [`install`], but spans opened at top level on this thread become
/// children of `parent` (a span id issued by the same recorder,
/// typically started on another thread). This is how cross-thread span
/// trees are stitched together.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub fn install_with_parent(recorder: Arc<dyn Recorder>, parent: SpanId) -> InstallGuard {
    let prev = CONTEXT.with(|c| {
        c.borrow_mut().replace(ThreadContext {
            recorder,
            current: parent,
        })
    });
    InstallGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// Restores the previously installed recorder (if any) on drop.
pub struct InstallGuard {
    prev: Option<ThreadContext>,
    // Tied to the installing thread: the TLS slot it must restore lives
    // there.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        let _ = CONTEXT.try_with(|c| *c.borrow_mut() = prev);
    }
}

/// Snapshot of this thread's recording context: the installed recorder
/// and the currently open span, if any. Used by the device pool to
/// re-install the caller's context on worker threads.
pub fn current_context() -> Option<(Arc<dyn Recorder>, SpanId)> {
    CONTEXT
        .try_with(|c| {
            c.borrow()
                .as_ref()
                .map(|ctx| (ctx.recorder.clone(), ctx.current))
        })
        .ok()
        .flatten()
}

/// The innermost open span on this thread (`SpanId::NONE` when none).
pub fn current_span() -> SpanId {
    CONTEXT
        .try_with(|c| c.borrow().as_ref().map_or(SpanId::NONE, |ctx| ctx.current))
        .unwrap_or(SpanId::NONE)
}

/// Open a span named `name` under the thread's current span.
///
/// When no recorder is installed (or the installed one is disabled)
/// this is a single thread-local read returning an inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    CONTEXT
        .try_with(|c| {
            let mut slot = c.borrow_mut();
            match slot.as_mut() {
                Some(ctx) if ctx.recorder.is_enabled() => {
                    let id = ctx.recorder.start(name, ctx.current);
                    let prev = ctx.current;
                    ctx.current = id;
                    SpanGuard {
                        active: Some(ActiveSpan {
                            recorder: ctx.recorder.clone(),
                            id,
                            prev,
                            attrs: Vec::new(),
                        }),
                    }
                }
                _ => SpanGuard { active: None },
            }
        })
        .unwrap_or(SpanGuard { active: None })
}

struct ActiveSpan {
    recorder: Arc<dyn Recorder>,
    id: SpanId,
    prev: SpanId,
    attrs: Vec<Attr>,
}

/// RAII guard for an open span; closes it (reporting wall time and
/// accumulated attributes) on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Whether this span is actually being captured. Gate any
    /// non-trivial attribute computation (popcounts, string building)
    /// on this.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// This span's id (`SpanId::NONE` when inert). Hand it to
    /// [`install_with_parent`] to parent work on another thread here.
    pub fn id(&self) -> SpanId {
        self.active.as_ref().map_or(SpanId::NONE, |a| a.id)
    }

    /// Attach an attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        if let Some(a) = self.active.as_mut() {
            a.attrs.push((key, value));
        }
    }

    /// Attach an unsigned integer attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.attr(key, AttrValue::U64(value));
    }

    /// Attach a float attribute.
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        self.attr(key, AttrValue::F64(value));
    }

    /// Attach a static-string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: &'static str) {
        self.attr(key, AttrValue::Str(value));
    }

    /// Attach an owned-string attribute.
    pub fn attr_text(&mut self, key: &'static str, value: String) {
        self.attr(key, AttrValue::Text(value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let _ = CONTEXT.try_with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    if ctx.current == active.id {
                        ctx.current = active.prev;
                    }
                }
            });
            active.recorder.end(active.id, active.attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_recorder_is_inert() {
        let mut sp = span("noop");
        assert!(!sp.is_recording());
        assert_eq!(sp.id(), SpanId::NONE);
        sp.attr_u64("ignored", 1);
    }

    #[test]
    fn noop_recorder_hands_out_none() {
        let rec = NoopRecorder;
        assert!(!rec.is_enabled());
        assert_eq!(rec.start("x", SpanId::NONE), SpanId::NONE);
    }

    #[test]
    fn install_guard_restores_previous_context() {
        let a = Arc::new(SpanCollector::new());
        let b = Arc::new(SpanCollector::new());
        let _ga = install(a.clone());
        {
            let _gb = install(b.clone());
            let _sp = span("inner");
        }
        let _sp = span("outer");
        drop(_sp);
        assert_eq!(b.spans().len(), 1);
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.spans()[0].name, "outer");
    }

    #[test]
    fn nesting_links_parents() {
        let rec = Arc::new(SpanCollector::new());
        let _g = install(rec.clone());
        let outer = span("outer");
        let outer_id = outer.id();
        {
            let inner = span("inner");
            assert!(inner.is_recording());
            drop(inner);
        }
        drop(outer);
        let spans = rec.spans();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, outer_id.0);
    }
}
