//! Counters, gauges, and log-bucketed histograms with Prometheus-text
//! and JSON exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics: register once, then update lock-free on hot
//! paths. The [`MetricsRegistry`] owns the name → handle map and
//! renders exposition formats on demand.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (queue depths, epoch numbers).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    /// Raise the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Index of the bucket `v` falls into: bucket 0 holds only zero, bucket
/// `i >= 1` holds `[2^(i-1), 2^i - 1]`. Every `u64` lands in exactly
/// one bucket.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (its Prometheus `le` label).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// Log2-bucketed latency/size histogram.
///
/// Samples are `u64`s (microseconds, nnz, ...); each lands in exactly
/// one of 65 buckets (zero, then one per power of two), so `observe` is
/// two relaxed atomic adds and quantile estimation reads 65 words.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold another histogram's samples into this one. The result is
    /// bucket-for-bucket identical to a histogram that observed the
    /// concatenation of both sample streams.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`); zero when empty. An over-estimate by at
    /// most 2x (the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Consistent point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], used for exposition so every
/// derived figure (cumulative buckets, count, quantiles) is computed
/// from one coherent read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing the `q`-quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// Escape a Prometheus `# HELP` text: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a Prometheus label value: backslash, double quote, newline.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    help: BTreeMap<String, String>,
}

/// Name → metric map with exposition.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short lock and
/// returns a lock-free handle; get-or-create semantics make it safe to
/// call from multiple sites with the same name. Names should follow
/// Prometheus conventions (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Attach `# HELP` text to a metric name.
    pub fn describe(&self, name: &str, help: &str) {
        self.lock().help.insert(name.to_string(), help.to_string());
    }

    /// Render the registry in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let help = |out: &mut String, name: &str| {
            if let Some(h) = inner.help.get(name) {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(h)));
            }
        };
        for (name, c) in &inner.counters {
            help(&mut out, name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in &inner.gauges {
            help(&mut out, name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
        }
        for (name, h) in &inner.histograms {
            help(&mut out, name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let snap = h.snapshot();
            let count = snap.count();
            let top = snap.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, n) in snap.buckets.iter().enumerate().take(top + 1) {
                cumulative += n;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
            out.push_str(&format!("{name}_sum {}\n", snap.sum));
            out.push_str(&format!("{name}_count {count}\n"));
        }
        out
    }

    /// Render the registry as a JSON object with `counters`, `gauges`,
    /// and `histograms` (count, sum, p50/p90/p99 bucket bounds).
    pub fn json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, c) in &inner.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", json_escape(name), c.get()));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, g) in &inner.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", json_escape(name), g.get()));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &inner.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let snap = h.snapshot();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(name),
                snap.count(),
                snap.sum,
                snap.quantile(0.5),
                snap.quantile(0.9),
                snap.quantile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cfpq_events_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("cfpq_events_total").get(), 5);
        let g = reg.gauge("cfpq_depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    proptest! {
        /// Every sample lands in exactly one bucket, and that bucket's
        /// bounds contain it.
        #[test]
        fn every_sample_in_exactly_one_bucket(v in 0u64..u64::MAX) {
            let i = bucket_index(v);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            prop_assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                prop_assert!(v > bucket_upper_bound(i - 1));
            }
            // No other bucket admits it under the same rule.
            let owners = (0..HISTOGRAM_BUCKETS)
                .filter(|&j| {
                    v <= bucket_upper_bound(j)
                        && (j == 0 || v > bucket_upper_bound(j - 1))
                })
                .count();
            prop_assert_eq!(owners, 1);
        }

        /// merge(h(a), h(b)) == h(a ++ b), bucket for bucket.
        #[test]
        fn merge_equals_concatenation(
            a in proptest::collection::vec(0u64..u64::MAX, 0..64),
            b in proptest::collection::vec(0u64..u64::MAX, 0..64),
        ) {
            let ha = Histogram::default();
            let hb = Histogram::default();
            let hc = Histogram::default();
            for &v in &a {
                ha.observe(v);
                hc.observe(v);
            }
            for &v in &b {
                hb.observe(v);
                hc.observe(v);
            }
            ha.merge(&hb);
            prop_assert_eq!(ha.snapshot(), hc.snapshot());
        }

        /// The quantile estimate's bucket actually contains at least
        /// q*count of the samples below or at it.
        #[test]
        fn quantile_is_an_upper_bound(
            samples in proptest::collection::vec(0u64..1_000_000, 1..64),
            q_ppm in 0u32..1_000_000,
        ) {
            let q = q_ppm as f64 / 1_000_000.0;
            let h = Histogram::default();
            for &v in &samples {
                h.observe(v);
            }
            let est = h.quantile(q);
            let at_or_below = samples.iter().filter(|&&v| v <= est).count() as f64;
            prop_assert!(at_or_below >= q * samples.len() as f64);
        }
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.describe(
            "cfpq_sheds_total",
            "requests shed\nwith newline \\ backslash",
        );
        reg.counter("cfpq_sheds_total").add(2);
        reg.gauge("cfpq_queue_depth").set(3);
        let h = reg.histogram("cfpq_wait_us");
        h.observe(0);
        h.observe(5);
        let text = reg.prometheus_text();
        assert!(
            text.contains("# HELP cfpq_sheds_total requests shed\\nwith newline \\\\ backslash\n")
        );
        assert!(text.contains("# TYPE cfpq_sheds_total counter\ncfpq_sheds_total 2\n"));
        assert!(text.contains("# TYPE cfpq_queue_depth gauge\ncfpq_queue_depth 3\n"));
        assert!(text.contains("cfpq_wait_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("cfpq_wait_us_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("cfpq_wait_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("cfpq_wait_us_sum 5\n"));
        assert!(text.contains("cfpq_wait_us_count 2\n"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(json_escape("x\"\\\n\u{1}"), "x\\\"\\\\\\n\\u0001");
    }

    #[test]
    fn json_exposition_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(2);
        reg.histogram("h").observe(9);
        let json = reg.json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"g\":2"));
        assert!(json.contains("\"count\":1"));
    }
}
