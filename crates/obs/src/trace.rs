//! The ring-buffer [`SpanCollector`], chrome://tracing export, and a
//! trace-format checker.
//!
//! The collector is lock-minimal: span ids come from one atomic, and
//! the open-span table / completed ring take a short mutex hold per
//! event (no allocation while locked beyond the span record itself).
//! The ring is bounded — when full, the oldest completed spans are
//! dropped and counted, so a long-running service can keep a collector
//! installed without unbounded growth.

use crate::{Attr, AttrValue, Recorder, SpanId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn thread_id() -> u64 {
    THREAD_ID.try_with(|t| *t).unwrap_or(0)
}

/// A completed span captured by a [`SpanCollector`].
#[derive(Clone, Debug)]
pub struct Span {
    /// This span's id (never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name (static site label: `"kernel"`, `"sweep"`, ...).
    pub name: &'static str,
    /// Numeric id of the thread the span was opened on.
    pub thread: u64,
    /// Start time in microseconds since the collector was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Attributes attached at close time.
    pub attrs: Vec<Attr>,
}

impl Span {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

struct PendingSpan {
    name: &'static str,
    parent: u64,
    thread: u64,
    start: Instant,
}

/// Ring-buffer span recorder.
///
/// Install with [`crate::install`]; read back with [`Self::spans`].
/// Spans are reported on close, so a crash mid-span loses only the
/// open spans.
pub struct SpanCollector {
    epoch: Instant,
    next_id: AtomicU64,
    capacity: usize,
    pending: Mutex<HashMap<u64, PendingSpan>>,
    done: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// Collector holding up to 65 536 completed spans.
    pub fn new() -> Self {
        Self::with_capacity(65_536)
    }

    /// Collector holding up to `capacity` completed spans; older spans
    /// are dropped (and counted) once the ring is full.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanCollector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            pending: Mutex::new(HashMap::new()),
            done: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Completed spans, ordered by start time.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .done
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect();
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }

    /// Number of completed spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The `k` longest completed spans, slowest first.
    pub fn top_slowest(&self, k: usize) -> Vec<Span> {
        let mut spans = self.spans();
        spans.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.id.cmp(&b.id)));
        spans.truncate(k);
        spans
    }

    /// Export completed spans as chrome://tracing "trace event format"
    /// JSON (an array of `ph:"X"` complete events). Load the file via
    /// chrome://tracing or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cfpq\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent\":{}",
                crate::metrics::json_escape(s.name),
                s.start_us,
                s.dur_us,
                s.thread,
                s.id,
                s.parent,
            ));
            for (k, v) in &s.attrs {
                out.push_str(&format!(",\"{}\":", crate::metrics::json_escape(k)));
                match v {
                    AttrValue::U64(n) => out.push_str(&n.to_string()),
                    AttrValue::F64(n) if n.is_finite() => out.push_str(&n.to_string()),
                    AttrValue::F64(_) => out.push_str("null"),
                    AttrValue::Str(t) => {
                        out.push_str(&format!("\"{}\"", crate::metrics::json_escape(t)))
                    }
                    AttrValue::Text(t) => {
                        out.push_str(&format!("\"{}\"", crate::metrics::json_escape(t)))
                    }
                }
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

impl Recorder for SpanCollector {
    fn is_enabled(&self) -> bool {
        true
    }

    fn start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let pending = PendingSpan {
            name,
            parent: parent.0,
            thread: thread_id(),
            start: Instant::now(),
        };
        self.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, pending);
        SpanId(id)
    }

    fn end(&self, id: SpanId, attrs: Vec<Attr>) {
        if id.is_none() {
            return;
        }
        let Some(pending) = self
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id.0)
        else {
            return;
        };
        // Truncate both endpoints against the same epoch and derive the
        // duration from the truncated values: floor() of a monotone
        // clock is monotone, so a child that really closed before its
        // parent can never be recorded closing after it (truncating
        // start and duration independently loses that invariant by 1us).
        let start_us = pending
            .start
            .saturating_duration_since(self.epoch)
            .as_micros() as u64;
        let end_us = self.epoch.elapsed().as_micros() as u64;
        let span = Span {
            id: id.0,
            parent: pending.parent,
            name: pending.name,
            thread: pending.thread,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            attrs,
        };
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if done.len() >= self.capacity {
            done.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        done.push_back(span);
    }
}

/// Check structural well-formedness of a span forest: every non-root
/// parent id must resolve to a captured span that started no later than
/// and closed no earlier than the child.
pub fn check_well_formed(spans: &[Span]) -> Result<(), String> {
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != spans.len() {
        return Err("duplicate span ids".into());
    }
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&s.parent) else {
            return Err(format!(
                "span {} ({}) references missing parent {}",
                s.id, s.name, s.parent
            ));
        };
        if p.start_us > s.start_us {
            return Err(format!(
                "span {} ({}) starts at {}us before its parent {} ({}) at {}us",
                s.id, s.name, s.start_us, p.id, p.name, p.start_us
            ));
        }
        if p.start_us + p.dur_us < s.start_us + s.dur_us {
            return Err(format!(
                "span {} ({}) closes at {}us after its parent {} ({}) at {}us",
                s.id,
                s.name,
                s.start_us + s.dur_us,
                p.id,
                p.name,
                p.start_us + p.dur_us
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Chrome trace format checker: a minimal JSON reader (the crate is
// dependency-free) plus the structural rules chrome://tracing needs.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "'{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .map(|c| c != b'"' && c != b'\\' && c >= 0x20)
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing garbage after JSON document"));
    }
    Ok(v)
}

/// Validate a chrome://tracing "trace event format" document: a JSON
/// array (or an object with a `traceEvents` array) of events, each with
/// string `name`/`ph`, numeric `ts`/`pid`/`tid`, and — for complete
/// (`ph:"X"`) events — a non-negative numeric `dur`. Returns the event
/// count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        Json::Arr(events) => events,
        Json::Obj(_) => match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            _ => return Err("object form must carry a traceEvents array".into()),
        },
        _ => return Err("top level must be an array of trace events".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        match ev.get("name") {
            Some(Json::Str(_)) => {}
            _ => return fail("missing string name"),
        }
        let ph = match ev.get("ph") {
            Some(Json::Str(ph)) if !ph.is_empty() => ph.clone(),
            _ => return fail("missing string ph"),
        };
        for key in ["ts", "pid", "tid"] {
            match ev.get(key) {
                Some(Json::Num(_)) => {}
                _ => return fail(&format!("missing numeric {key}")),
            }
        }
        if ph == "X" {
            match ev.get("dur") {
                Some(Json::Num(d)) if *d >= 0.0 => {}
                _ => return fail("complete event missing non-negative dur"),
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, install_with_parent, span};
    use std::sync::Arc;

    #[test]
    fn collector_captures_tree_and_attrs() {
        let rec = Arc::new(SpanCollector::new());
        let _g = install(rec.clone());
        {
            let mut outer = span("solve");
            outer.attr_str("strategy", "masked-delta");
            {
                let mut inner = span("sweep");
                inner.attr_u64("sweep", 1);
            }
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let sweep = spans.iter().find(|s| s.name == "sweep").unwrap();
        let solve = spans.iter().find(|s| s.name == "solve").unwrap();
        assert_eq!(sweep.parent, solve.id);
        assert_eq!(sweep.attr("sweep"), Some(&AttrValue::U64(1)));
        check_well_formed(&spans).unwrap();
    }

    #[test]
    fn ring_drops_oldest() {
        let rec = Arc::new(SpanCollector::with_capacity(2));
        let _g = install(rec.clone());
        for _ in 0..5 {
            let _sp = span("s");
        }
        assert_eq!(rec.spans().len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn cross_thread_parenting() {
        let rec = Arc::new(SpanCollector::new());
        let _g = install(rec.clone());
        let outer = span("outer");
        let parent = outer.id();
        let rec2: Arc<dyn Recorder> = rec.clone();
        std::thread::spawn(move || {
            let _g = install_with_parent(rec2, parent);
            let _sp = span("remote");
        })
        .join()
        .unwrap();
        drop(outer);
        let spans = rec.spans();
        let remote = spans.iter().find(|s| s.name == "remote").unwrap();
        assert_eq!(remote.parent, parent.0);
        check_well_formed(&spans).unwrap();
    }

    #[test]
    fn chrome_trace_round_trips_through_checker() {
        let rec = Arc::new(SpanCollector::new());
        let _g = install(rec.clone());
        {
            let mut sp = span("kernel");
            sp.attr_u64("nnz", 12);
            sp.attr_str("repr", "csr");
            sp.attr_text("note", "quote \" backslash \\ done".to_string());
        }
        let json = rec.chrome_trace_json();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("42").is_err());
        assert!(validate_chrome_trace("[{\"ph\":\"X\"}]").is_err());
        assert!(
            validate_chrome_trace("[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1}]")
                .is_err(),
            "complete event without dur must fail"
        );
        assert_eq!(validate_chrome_trace("[]").unwrap(), 0);
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}").unwrap(), 0);
    }

    #[test]
    fn well_formedness_detects_orphans() {
        let spans = vec![Span {
            id: 2,
            parent: 1,
            name: "child",
            thread: 1,
            start_us: 0,
            dur_us: 1,
            attrs: vec![],
        }];
        assert!(check_well_formed(&spans).is_err());
    }
}
