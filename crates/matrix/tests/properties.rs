//! Property-based tests for the matrix kernels: the dense and sparse
//! representations must be observationally identical under every
//! operation the solvers use, and the algebraic laws the closure proofs
//! lean on must hold.

use cfpq_grammar::random::{random_wcnf, RandomGrammarConfig};
use cfpq_matrix::closure::{squaring_closure, theorem1_terms_needed, valiant_closure_terms};
use cfpq_matrix::{
    AdaptiveEngine, BoolEngine, BoolMat, CsrMatrix, DenseBitMatrix, DenseEngine, Device,
    ParDenseEngine, ParSparseEngine, SetMatrix, SparseEngine, TiledBitMatrix, TiledEngine,
};
use proptest::prelude::*;

/// Base RNG seed for every property in this file: CI must replay the
/// exact same cases on every run (see shims/README.md for the seeding
/// scheme and the `CFPQ_PROPTEST_SEED` override).
const RNG_SEED: u64 = 0x7E01_51ED;

/// Strategy: a set of (row, col) pairs within an n×n matrix.
fn pairs(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..max_len)
}

const N: usize = 37; // deliberately not a multiple of 64

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, RNG_SEED))]

    #[test]
    fn dense_and_sparse_products_agree(a in pairs(N, 80), b in pairs(N, 80)) {
        let da = DenseBitMatrix::from_pairs(N, &a);
        let db = DenseBitMatrix::from_pairs(N, &b);
        let sa = CsrMatrix::from_pairs(N, &a);
        let sb = CsrMatrix::from_pairs(N, &b);
        prop_assert_eq!(da.multiply(&db).pairs(), sa.multiply(&sb).pairs());
    }

    #[test]
    fn parallel_products_agree_with_serial(a in pairs(N, 80), b in pairs(N, 80), workers in 1usize..6) {
        let device = Device::new(workers);
        let da = DenseBitMatrix::from_pairs(N, &a);
        let db = DenseBitMatrix::from_pairs(N, &b);
        prop_assert_eq!(da.multiply(&db), da.multiply_on(&db, &device));
        let sa = CsrMatrix::from_pairs(N, &a);
        let sb = CsrMatrix::from_pairs(N, &b);
        prop_assert_eq!(sa.multiply(&sb), sa.multiply_on(&sb, &device));
    }

    #[test]
    fn union_is_commutative_idempotent_monotone(a in pairs(N, 60), b in pairs(N, 60)) {
        let da = DenseBitMatrix::from_pairs(N, &a);
        let db = DenseBitMatrix::from_pairs(N, &b);
        let mut ab = da.clone();
        ab.union_in_place(&db);
        let mut ba = db.clone();
        ba.union_in_place(&da);
        prop_assert_eq!(&ab, &ba, "commutative");
        let mut again = ab.clone();
        prop_assert!(!again.union_in_place(&da), "idempotent: no change");
        prop_assert!(ab.nnz() >= da.nnz().max(db.nnz()), "monotone");

        // Sparse mirrors dense.
        let mut sab = CsrMatrix::from_pairs(N, &a);
        sab.union_in_place(&CsrMatrix::from_pairs(N, &b));
        prop_assert_eq!(sab.pairs(), ab.pairs());
    }

    #[test]
    fn multiplication_distributes_over_union(
        a in pairs(N, 50), b in pairs(N, 50), c in pairs(N, 50)
    ) {
        // a × (b ∪ c) = (a × b) ∪ (a × c) — the law that makes the
        // per-rule decomposition of Algorithm 1 equal to the monolithic
        // set-matrix product.
        let a = DenseBitMatrix::from_pairs(N, &a);
        let b = DenseBitMatrix::from_pairs(N, &b);
        let c = DenseBitMatrix::from_pairs(N, &c);
        let mut bc = b.clone();
        bc.union_in_place(&c);
        let left = a.multiply(&bc);
        let mut right = a.multiply(&b);
        right.union_in_place(&a.multiply(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn multiplication_is_associative(a in pairs(20, 40), b in pairs(20, 40), c in pairs(20, 40)) {
        let a = CsrMatrix::from_pairs(20, &a);
        let b = CsrMatrix::from_pairs(20, &b);
        let c = CsrMatrix::from_pairs(20, &c);
        prop_assert_eq!(
            a.multiply(&b).multiply(&c).pairs(),
            a.multiply(&b.multiply(&c)).pairs()
        );
    }

    #[test]
    fn transpose_reverses_products(a in pairs(N, 60), b in pairs(N, 60)) {
        // (a × b)^T = b^T × a^T
        let a = DenseBitMatrix::from_pairs(N, &a);
        let b = DenseBitMatrix::from_pairs(N, &b);
        prop_assert_eq!(
            a.multiply(&b).transpose(),
            b.transpose().multiply(&a.transpose())
        );
    }

    #[test]
    fn difference_and_intersect_laws(a in pairs(N, 60), b in pairs(N, 60)) {
        let a = CsrMatrix::from_pairs(N, &a);
        let b = CsrMatrix::from_pairs(N, &b);
        let diff = a.difference(&b);
        let inter = a.intersect(&b);
        // diff ∪ inter = a, diff ∩ b = 0
        let mut rebuilt = diff.clone();
        rebuilt.union_in_place(&inter);
        prop_assert_eq!(rebuilt.pairs(), a.pairs());
        prop_assert!(diff.intersect(&b).is_zero());
        // Dense agrees.
        let da = DenseBitMatrix::from_pairs(N, &a.pairs());
        let db = DenseBitMatrix::from_pairs(N, &b.pairs());
        prop_assert_eq!(da.difference(&db).pairs(), diff.pairs());
        prop_assert_eq!(da.intersect(&db).pairs(), inter.pairs());
    }

    #[test]
    fn union_pairs_equals_union_with_from_pairs(a in pairs(N, 60), b in pairs(N, 60)) {
        // The point-update hook behind GraphIndex edge insertion: on
        // every engine, `union_pairs(m, ps)` must be observationally
        // identical to building `from_pairs(ps)` and unioning it, and
        // its change flag must agree.
        fn check<E: BoolEngine>(e: &E, a: &[(u32, u32)], b: &[(u32, u32)]) -> Result<(), TestCaseError> {
            let mut via_pairs = e.from_pairs(N, a);
            let mut via_union = via_pairs.clone();
            let changed_pairs = e.union_pairs(&mut via_pairs, b);
            let changed_union = e.union_in_place(&mut via_union, &e.from_pairs(N, b));
            prop_assert_eq!(via_pairs.pairs(), via_union.pairs(), "{}", e.name());
            prop_assert_eq!(changed_pairs, changed_union, "{} change flag", e.name());
            prop_assert!(!e.union_pairs(&mut via_pairs, b), "{} idempotent", e.name());
            prop_assert!(!e.union_pairs(&mut via_pairs, &[]), "{} empty batch", e.name());
            Ok(())
        }
        check(&DenseEngine, &a, &b)?;
        check(&SparseEngine, &a, &b)?;
        check(&ParDenseEngine::new(Device::new(2)), &a, &b)?;
        check(&ParSparseEngine::new(Device::new(3)), &a, &b)?;
        check(&TiledEngine::new(Device::new(2)), &a, &b)?;
        check(&AdaptiveEngine::new(Device::new(2)), &a, &b)?;
    }

    #[test]
    fn masked_product_laws_per_engine(a in pairs(N, 80), b in pairs(N, 80), m in pairs(N, 120)) {
        // The multiply_masked contract on every engine: the output is
        // disjoint from the mask, and together with the masked-out part
        // of the plain product it rebuilds the plain product exactly —
        // masked(a,b,m) ∪ (a×b ∩ m) == a×b.
        fn check<E: BoolEngine>(
            e: &E,
            a: &[(u32, u32)],
            b: &[(u32, u32)],
            m: &[(u32, u32)],
        ) -> Result<(), TestCaseError> {
            let (ma, mb) = (e.from_pairs(N, a), e.from_pairs(N, b));
            let mask = e.from_pairs(N, m);
            let masked = e.multiply_masked(&ma, &mb, &mask);
            prop_assert!(
                e.intersect(&masked, &mask).nnz() == 0,
                "output must be disjoint from the mask ({})",
                e.name()
            );
            let product = e.multiply(&ma, &mb);
            let mut rebuilt = masked;
            e.union_in_place(&mut rebuilt, &e.intersect(&product, &mask));
            prop_assert_eq!(rebuilt.pairs(), product.pairs(), "{}", e.name());
            Ok(())
        }
        check(&DenseEngine, &a, &b, &m)?;
        check(&SparseEngine, &a, &b, &m)?;
        check(&ParDenseEngine::new(Device::new(2)), &a, &b, &m)?;
        check(&ParSparseEngine::new(Device::new(3)), &a, &b, &m)?;
        check(&TiledEngine::new(Device::new(2)), &a, &b, &m)?;
        check(&AdaptiveEngine::new(Device::new(2)), &a, &b, &m)?;
    }

    #[test]
    fn masked_kernels_agree_across_representations(
        a in pairs(N, 80), b in pairs(N, 80), m in pairs(N, 120)
    ) {
        let dense = DenseBitMatrix::from_pairs(N, &a)
            .multiply_masked(&DenseBitMatrix::from_pairs(N, &b), &DenseBitMatrix::from_pairs(N, &m));
        let sparse = CsrMatrix::from_pairs(N, &a)
            .multiply_masked(&CsrMatrix::from_pairs(N, &b), &CsrMatrix::from_pairs(N, &m));
        prop_assert_eq!(dense.pairs(), sparse.pairs());
        // Both equal the unfused multiply-then-difference form.
        let unfused = CsrMatrix::from_pairs(N, &a)
            .multiply(&CsrMatrix::from_pairs(N, &b))
            .difference(&CsrMatrix::from_pairs(N, &m));
        prop_assert_eq!(&sparse, &unfused);
        // The blocked layout agrees with both flat representations.
        let tiled = TiledBitMatrix::from_pairs(N, &a)
            .multiply_masked(&TiledBitMatrix::from_pairs(N, &b), &TiledBitMatrix::from_pairs(N, &m));
        prop_assert_eq!(tiled.pairs(), sparse.pairs());
    }

    #[test]
    fn pairs_roundtrip(a in pairs(N, 100)) {
        let d = DenseBitMatrix::from_pairs(N, &a);
        let s = CsrMatrix::from_pairs(N, &a);
        prop_assert_eq!(DenseBitMatrix::from_pairs(N, &d.pairs()), d.clone());
        prop_assert_eq!(CsrMatrix::from_pairs(N, &s.pairs()), s.clone());
        prop_assert_eq!(d.pairs(), s.pairs());
        prop_assert_eq!(d.nnz(), s.nnz());
    }

    #[test]
    fn identity_is_neutral(a in pairs(N, 80)) {
        let d = DenseBitMatrix::from_pairs(N, &a);
        let id = DenseBitMatrix::identity(N);
        prop_assert_eq!(d.multiply(&id), d.clone());
        prop_assert_eq!(id.multiply(&d), d);
        let s = CsrMatrix::from_pairs(N, &a);
        let sid = CsrMatrix::identity(N);
        prop_assert_eq!(s.multiply(&sid), s.clone());
        prop_assert_eq!(sid.multiply(&s), s);
    }
}

// Theorem 1 (§2): the squaring closure `a_cf` equals Valiant's
// transitive closure `a⁺` over the grammar algebra. Checked mechanically
// on random weak-CNF grammars and random set-matrix initializations,
// with the same fixed base seed so CI replays identical instances.
proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(24, RNG_SEED))]

    #[test]
    fn theorem1_squaring_closure_equals_valiant_closure(
        grammar_seed in 0u64..400,
        entries in prop::collection::vec((0u32..6, 0u32..6), 1..10),
        rule_picks in prop::collection::vec(0usize..1 << 16, 1..10),
    ) {
        let g = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        if g.term_rules.is_empty() {
            return Ok(());
        }
        let mut m = SetMatrix::empty(6, g.n_nts());
        for (k, &(i, j)) in entries.iter().enumerate() {
            let pick = rule_picks[k % rule_picks.len()] % g.term_rules.len();
            m.insert(i, j, g.term_rules[pick].lhs);
        }

        // a⁺'s partial unions must converge exactly to a_cf (Theorem 1)...
        let Some(k) = theorem1_terms_needed(&m, &g.binary_rules, 256) else {
            return Err(TestCaseError::Fail(
                "a⁺ did not reach a_cf within 256 terms".into(),
            ));
        };

        // ...from below (Lemma 2.1 direction): the partial union one term
        // before the fixpoint is strictly dominated. Only meaningful when
        // convergence took more than one term — at k = 1 the "one short"
        // union would be the fixpoint itself.
        if k > 1 {
            let closed = squaring_closure(&m, &g.binary_rules, false).matrix;
            let one_short = valiant_closure_terms(&m, &g.binary_rules, k - 1);
            prop_assert!(closed.dominates(&one_short));
            prop_assert!(closed != one_short, "k is minimal, so k-1 terms fall short");
        }
    }
}
