//! The paper-literal matrix: elements are subsets of the nonterminal set.
//!
//! §2 defines multiplication of such matrices through the element product
//! `N1 · N2 = {A | ∃B ∈ N1, ∃C ∈ N2 : (A → BC) ∈ P}` with set union as
//! addition. [`SetMatrix`] implements exactly that algebra; the Boolean
//! decomposition in [`crate::engine`] is the optimized equivalent, and the
//! two are cross-checked in `cfpq-core`'s tests.
//!
//! Cells are bitsets over nonterminal indices (`words_per_cell` `u64`
//! words), so any |N| is supported.

use cfpq_grammar::wcnf::BinaryRule;
use cfpq_grammar::{Nt, SymbolTable};

/// An `n × n` matrix whose elements are nonterminal sets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SetMatrix {
    n: usize,
    n_nts: usize,
    /// Words per cell (`ceil(n_nts / 64)`).
    wpc: usize,
    bits: Vec<u64>,
}

impl SetMatrix {
    /// Creates the matrix of empty sets.
    pub fn empty(n: usize, n_nts: usize) -> Self {
        let wpc = n_nts.div_ceil(64).max(1);
        Self {
            n,
            n_nts,
            wpc,
            bits: vec![0; n * n * wpc],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonterminals the cells range over.
    pub fn n_nts(&self) -> usize {
        self.n_nts
    }

    #[inline]
    fn cell_offset(&self, i: u32, j: u32) -> usize {
        (i as usize * self.n + j as usize) * self.wpc
    }

    /// Inserts `nt` into cell `(i, j)`.
    #[inline]
    pub fn insert(&mut self, i: u32, j: u32, nt: Nt) {
        let o = self.cell_offset(i, j);
        debug_assert!(nt.index() < self.n_nts);
        self.bits[o + nt.index() / 64] |= 1u64 << (nt.index() % 64);
    }

    /// True if `nt ∈ cell(i, j)`.
    #[inline]
    pub fn contains(&self, i: u32, j: u32, nt: Nt) -> bool {
        let o = self.cell_offset(i, j);
        self.bits[o + nt.index() / 64] >> (nt.index() % 64) & 1 == 1
    }

    /// The cell `(i, j)` as a sorted vector of nonterminals.
    pub fn cell(&self, i: u32, j: u32) -> Vec<Nt> {
        let o = self.cell_offset(i, j);
        let mut out = Vec::new();
        for (wi, &word) in self.bits[o..o + self.wpc].iter().enumerate() {
            let mut word = word;
            while word != 0 {
                out.push(Nt((wi * 64) as u32 + word.trailing_zeros()));
                word &= word - 1;
            }
        }
        out
    }

    /// True if cell `(i, j)` is the empty set.
    pub fn cell_is_empty(&self, i: u32, j: u32) -> bool {
        let o = self.cell_offset(i, j);
        self.bits[o..o + self.wpc].iter().all(|&w| w == 0)
    }

    /// Total number of `(nonterminal, i, j)` entries — bounded by
    /// `|V|²·|N|`, the quantity driving the termination argument of
    /// Theorem 3.
    pub fn total_entries(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Matrix union `self ∪= other`; returns `true` on change
    /// (Algorithm 1 line 9 uses exactly this to detect the fixpoint).
    pub fn union_in_place(&mut self, other: &SetMatrix) -> bool {
        assert_eq!(self.n, other.n);
        assert_eq!(self.wpc, other.wpc);
        let mut changed = 0u64;
        for (a, &b) in self.bits.iter_mut().zip(other.bits.iter()) {
            changed |= b & !*a;
            *a |= b;
        }
        changed != 0
    }

    /// The §2 matrix product: `c[i][j] = ⋃ₖ a[i][k] · b[k][j]` with the
    /// grammar-driven element product over `rules`.
    pub fn multiply(&self, other: &SetMatrix, rules: &[BinaryRule]) -> SetMatrix {
        assert_eq!(self.n, other.n);
        let mut c = SetMatrix::empty(self.n, self.n_nts);
        let n = self.n as u32;
        for i in 0..n {
            for k in 0..n {
                if self.cell_is_empty(i, k) {
                    continue;
                }
                let ao = self.cell_offset(i, k);
                let a_cell = &self.bits[ao..ao + self.wpc];
                for j in 0..n {
                    if other.cell_is_empty(k, j) {
                        continue;
                    }
                    let bo = other.cell_offset(k, j);
                    // Apply every production A -> BC with B ∈ a, C ∈ b.
                    for r in rules {
                        let b_in = a_cell[r.left.index() / 64] >> (r.left.index() % 64) & 1 == 1;
                        if !b_in {
                            continue;
                        }
                        let c_in = other.bits[bo + r.right.index() / 64] >> (r.right.index() % 64)
                            & 1
                            == 1;
                        if c_in {
                            c.insert(i, j, r.lhs);
                        }
                    }
                }
            }
        }
        c
    }

    /// `self ⪰ other` in the partial order of §2 (`aᵢⱼ ⊇ bᵢⱼ` for all
    /// `i, j`).
    pub fn dominates(&self, other: &SetMatrix) -> bool {
        assert_eq!(self.n, other.n);
        assert_eq!(self.wpc, other.wpc);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(&a, &b)| b & !a == 0)
    }

    /// Renders the matrix in the style of the paper's Fig. 6–8, e.g.
    /// `{S1} {S3} .` per row (`.` = empty set).
    pub fn render(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        for i in 0..self.n as u32 {
            let mut row = Vec::with_capacity(self.n);
            for j in 0..self.n as u32 {
                let cell = self.cell(i, j);
                if cell.is_empty() {
                    row.push(".".to_owned());
                } else {
                    let names: Vec<&str> = cell.iter().map(|&nt| symbols.nt_name(nt)).collect();
                    row.push(format!("{{{}}}", names.join(",")));
                }
            }
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;

    fn simple() -> cfpq_grammar::Wcnf {
        Cfg::parse("S -> A B\nA -> a\nB -> b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn insert_contains_cell() {
        let g = simple();
        let (s, a) = (
            g.symbols.get_nt("S").unwrap(),
            g.symbols.get_nt("A").unwrap(),
        );
        let mut m = SetMatrix::empty(3, g.n_nts());
        m.insert(0, 1, a);
        m.insert(0, 1, s);
        assert!(m.contains(0, 1, a));
        assert!(!m.contains(1, 0, a));
        assert_eq!(m.cell(0, 1), vec![s.min(a), s.max(a)]);
        assert_eq!(m.total_entries(), 2);
    }

    #[test]
    fn product_applies_binary_rules() {
        let g = simple();
        let (s, a, b) = (
            g.symbols.get_nt("S").unwrap(),
            g.symbols.get_nt("A").unwrap(),
            g.symbols.get_nt("B").unwrap(),
        );
        let mut m1 = SetMatrix::empty(3, g.n_nts());
        let mut m2 = SetMatrix::empty(3, g.n_nts());
        m1.insert(0, 1, a);
        m2.insert(1, 2, b);
        let c = m1.multiply(&m2, &g.binary_rules);
        assert!(c.contains(0, 2, s));
        assert_eq!(c.total_entries(), 1);
        // Order matters: B then A produces nothing.
        let c_rev = m2.multiply(&m1, &g.binary_rules);
        assert_eq!(c_rev.total_entries(), 0);
    }

    #[test]
    fn union_and_dominates() {
        let g = simple();
        let a = g.symbols.get_nt("A").unwrap();
        let b = g.symbols.get_nt("B").unwrap();
        let mut m1 = SetMatrix::empty(2, g.n_nts());
        let mut m2 = SetMatrix::empty(2, g.n_nts());
        m1.insert(0, 0, a);
        m2.insert(0, 0, b);
        assert!(!m1.dominates(&m2));
        assert!(m1.union_in_place(&m2));
        assert!(m1.dominates(&m2));
        assert!(!m1.union_in_place(&m2));
    }

    #[test]
    fn render_matches_paper_style() {
        let g = simple();
        let a = g.symbols.get_nt("A").unwrap();
        let mut m = SetMatrix::empty(2, g.n_nts());
        m.insert(0, 1, a);
        let text = m.render(&g.symbols);
        assert_eq!(text, ". {A}\n. .\n");
    }

    #[test]
    fn many_nonterminals_cross_word_boundary() {
        let mut m = SetMatrix::empty(2, 130);
        m.insert(0, 0, Nt(0));
        m.insert(0, 0, Nt(64));
        m.insert(0, 0, Nt(129));
        assert_eq!(m.cell(0, 0), vec![Nt(0), Nt(64), Nt(129)]);
        assert_eq!(m.total_entries(), 3);
    }
}
