//! The backend abstraction: which matrix representation runs the Boolean
//! kernels, and on what device.
//!
//! The paper's evaluation compares four implementations that differ *only*
//! in this layer (§6): dense vs CSR representation × CPU vs GPU execution.
//! [`BoolEngine`] captures exactly that degree of freedom, so a single
//! generic solver in `cfpq-core` yields all four columns of Tables 1/2:
//!
//! | paper | engine |
//! |---|---|
//! | dGPU | [`ParDenseEngine`] (dense, device-parallel) |
//! | sCPU | [`SparseEngine`] (CSR, serial) |
//! | sGPU | [`ParSparseEngine`] (CSR, device-parallel) |
//! | — | [`DenseEngine`] (dense, serial; ablation baseline) |

use crate::dense::DenseBitMatrix;
use crate::device::Device;
use crate::sparse::CsrMatrix;

/// Minimal Boolean-matrix interface required by the solvers.
///
/// `Send + Sync + 'static` because matrices cross thread boundaries in
/// two places: the [`Device`] kernel pool borrows them for row-block
/// tasks, and the `cfpq-service` snapshot layer shares whole closed
/// indexes between reader threads behind `Arc`s.
pub trait BoolMat: Clone + PartialEq + Send + Sync + 'static {
    /// Matrix dimension `n`.
    fn n(&self) -> usize;
    /// Reads bit `(i, j)`.
    fn get(&self, i: u32, j: u32) -> bool;
    /// Number of set bits (`#results` per nonterminal in Table 1/2 terms).
    fn nnz(&self) -> usize;
    /// All set `(row, col)` pairs in row-major order.
    fn pairs(&self) -> Vec<(u32, u32)>;
}

impl BoolMat for DenseBitMatrix {
    fn n(&self) -> usize {
        DenseBitMatrix::n(self)
    }
    fn get(&self, i: u32, j: u32) -> bool {
        DenseBitMatrix::get(self, i, j)
    }
    fn nnz(&self) -> usize {
        DenseBitMatrix::nnz(self)
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        DenseBitMatrix::pairs(self)
    }
}

impl BoolMat for CsrMatrix {
    fn n(&self) -> usize {
        CsrMatrix::n(self)
    }
    fn get(&self, i: u32, j: u32) -> bool {
        CsrMatrix::get(self, i, j)
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        CsrMatrix::pairs(self)
    }
}

/// One job of a [`BoolEngine::multiply_masked_batch`]: operands `(a, b)`
/// plus an optional complement mask.
pub type MaskedJob<'a, M> = (&'a M, &'a M, Option<&'a M>);

/// Cumulative engine-internal work counters, surfaced to the solvers
/// through [`BoolEngine::kernel_counters`] and reported per run in
/// `SolveStats` (`cfpq-core`). Counters are monotone and shared across
/// clones of an engine (snapshots and worker threads advance one
/// stream), so a run's contribution is the difference of two samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Tile-granular kernel launches the blocked backends avoided:
    /// products skipped because the counterpart tile-row stored nothing,
    /// plus accumulated output tiles that masking left empty. Zero for
    /// the flat engines.
    pub tiles_skipped: u64,
    /// Representation conversions performed by the adaptive engine
    /// (dense ↔ CSR ↔ tiled). Zero for fixed-representation engines.
    pub repr_switches: u64,
}

impl KernelCounters {
    /// The work performed since an `earlier` sample of the same engine.
    pub fn since(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            tiles_skipped: self.tiles_skipped.saturating_sub(earlier.tiles_skipped),
            repr_switches: self.repr_switches.saturating_sub(earlier.repr_switches),
        }
    }
}

/// A matrix backend: representation + execution strategy.
///
/// # Decorating an engine
///
/// Engines compose: a wrapper type (instrumentation, fault injection —
/// see `cfpq-service`'s `FaultInjector`) can implement `BoolEngine` by
/// delegating to an inner engine. Two rules keep a decorator
/// transparent to the solvers:
///
/// * **Delegate batches whole.** The batch entry points exist so
///   device-backed engines can overlap independent kernels; a decorator
///   that re-implements `multiply_batch`/`multiply_masked_batch` as a
///   per-job loop over its own scalar methods silently serializes them.
///   Do any per-job bookkeeping up front, then hand the intact job
///   slice to the inner engine.
/// * **Keep defaults consistent.** If the decorator overrides a method
///   with a default body (e.g. `union_pairs`), it must forward to the
///   inner engine's version, not the trait default — the inner engine
///   may have a faster override the solvers rely on.
/// * **Forward the counters.** [`BoolEngine::kernel_counters`] defaults
///   to all-zeros; a decorator over a counting engine (tiled, adaptive)
///   must delegate it, or the solvers' per-run work accounting silently
///   reads zero through the wrapper.
///
/// # The tile-kernel contract
///
/// Blocked backends (`TiledEngine`, and `AdaptiveEngine` when it holds a
/// tiled operand) decompose every product into fixed-size tile-pair
/// kernels. Three guarantees keep them interchangeable with the flat
/// engines:
///
/// * **Canonical form.** No all-zero tile is ever stored and tile
///   columns are strictly ascending per tile-row, so structural equality
///   is semantic equality and `nnz`/`pairs` never visit dead payloads.
/// * **Same masked contract, tile-granular skipping.** The masked
///   product obeys the exact [`BoolEngine::multiply_masked`] laws below;
///   the backend may skip any tile pair it can prove contributes nothing
///   (empty counterpart tile-row, fully-masked output tile) and must
///   count those skips in [`KernelCounters::tiles_skipped`].
/// * **Monotone shared counters.** Skip counts only grow and are shared
///   across engine clones, so `kernel_counters()` sampled before and
///   after a run brackets exactly that run's work on a quiescent engine.
///
/// # The Recorder contract
///
/// Every product entry point (`multiply`, `multiply_masked`, and each
/// job of the batch variants) must run under a `cfpq_obs` span named
/// `"kernel"` tagged with the representation actually used (`repr`),
/// the operation (`op`: `mul`/`masked`), and the output `nnz` —
/// blocked backends additionally tag `tiles_skipped`. Three rules keep
/// this free when tracing is off and honest when it is on:
///
/// * **Gate attribute work.** Attribute computation (nnz popcounts,
///   string building) must sit behind `SpanGuard::is_recording`; an
///   engine with no recorder installed pays one thread-local read per
///   kernel and nothing else (enforced by the `reproduce --smoke`
///   overhead guard).
/// * **One span per kernel.** A method that delegates to another
///   *instrumented* entry point must not add its own span, or every
///   product double-counts; wrap exactly the site that runs the raw
///   matrix kernel.
/// * **Decorators add no kernel spans.** A decorator forwards to an
///   inner engine that already records its kernels; like the counters
///   above, span emission belongs to the engine doing the work. The
///   [`crate::Device`] propagates the calling thread's recorder onto
///   pool threads, so batch jobs land in the caller's trace without
///   decorator help.
pub trait BoolEngine: Send + Sync {
    /// The matrix type this engine operates on.
    type Matrix: BoolMat;

    /// Human-readable backend name (appears in reports/benches).
    fn name(&self) -> &'static str;

    /// The zero matrix of size `n × n`.
    fn zeros(&self, n: usize) -> Self::Matrix;

    /// Builds a matrix from `(row, col)` pairs. Takes `&self` because the
    /// engine is an abstract factory here (the matrix is built *by* the
    /// engine, not converted *from* it).
    #[allow(clippy::wrong_self_convention)]
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> Self::Matrix;

    /// Boolean matrix product.
    fn multiply(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix;

    /// `a |= b`; returns `true` if `a` changed (fixpoint detection,
    /// Algorithm 1 line 8).
    fn union_in_place(&self, a: &mut Self::Matrix, b: &Self::Matrix) -> bool;

    /// `a |= {pairs}` — merges explicit `(row, col)` pairs into `a` in
    /// place; returns `true` if `a` changed. This is the edge-update hook
    /// a persistent `GraphIndex` relies on: absorbing a small batch of
    /// new edges must not materialize a whole second matrix. The default
    /// falls back to `from_pairs` + `union_in_place`; both concrete
    /// representations override it with real point updates.
    fn union_pairs(&self, a: &mut Self::Matrix, pairs: &[(u32, u32)]) -> bool {
        if pairs.is_empty() {
            return false;
        }
        let add = self.from_pairs(a.n(), pairs);
        self.union_in_place(a, &add)
    }

    /// Grows `a` to `n × n` in place (new cells unset). `n` must not
    /// shrink the matrix. This is the node-universe hook behind
    /// `GraphIndex::add_edges` accepting previously-unseen node ids.
    fn grow(&self, a: &mut Self::Matrix, n: usize);

    /// `a \ b` — entries of `a` absent from `b` (semi-naive delta loop).
    fn difference(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix;

    /// `a ∩ b` — entrywise conjunction (conjunctive-grammar extension).
    fn intersect(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix;

    /// Computes several independent products. The default runs them
    /// sequentially; device-backed engines dispatch one (serial) kernel
    /// per job to the pool, exploiting inter-rule independence within a
    /// fixpoint sweep (the paper's §7 multi-device remark).
    fn multiply_batch(&self, jobs: &[(&Self::Matrix, &Self::Matrix)]) -> Vec<Self::Matrix> {
        jobs.iter().map(|(a, b)| self.multiply(a, b)).collect()
    }

    /// Masked Boolean product `(a × b) \ complement_mask`.
    ///
    /// The contract every implementation must honour (property-tested):
    /// the output is disjoint from `complement_mask`, and
    /// `multiply_masked(a, b, m) ∪ (multiply(a, b) ∩ m) = multiply(a, b)`.
    ///
    /// The default falls back to `multiply` + `difference`; both concrete
    /// representations override it with real masked kernels that never
    /// regenerate known entries (dense: AND-out mask words per output
    /// row; CSR: seed the row accumulator with the mask row).
    fn multiply_masked(
        &self,
        a: &Self::Matrix,
        b: &Self::Matrix,
        complement_mask: &Self::Matrix,
    ) -> Self::Matrix {
        self.difference(&self.multiply(a, b), complement_mask)
    }

    /// Computes several independent products, each with an optional
    /// complement mask ([`BoolEngine::multiply_masked`] semantics when
    /// the mask is present, plain [`BoolEngine::multiply`] otherwise).
    /// The default runs sequentially; device-backed engines dispatch one
    /// serial kernel per job to the pool so a fixpoint sweep's rule
    /// kernels overlap.
    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, Self::Matrix>]) -> Vec<Self::Matrix> {
        jobs.iter()
            .map(|&(a, b, m)| match m {
                Some(m) => self.multiply_masked(a, b, m),
                None => self.multiply(a, b),
            })
            .collect()
    }

    /// Cumulative internal work counters (see [`KernelCounters`]). The
    /// default — flat representations with nothing to skip — is
    /// all-zeros; counting engines override it, and decorators must
    /// delegate it (see the decorator contract above).
    fn kernel_counters(&self) -> KernelCounters {
        KernelCounters::default()
    }
}

/// Runs one product kernel under an obs `"kernel"` span, tagging the
/// representation, operation, and output nnz (computed only when a
/// recorder is actually capturing — see the Recorder contract on
/// [`BoolEngine`]).
pub(crate) fn traced_kernel<M: BoolMat>(
    repr: &'static str,
    op: &'static str,
    f: impl FnOnce() -> M,
) -> M {
    let mut sp = cfpq_obs::span("kernel");
    let out = f();
    if sp.is_recording() {
        sp.attr_str("repr", repr);
        sp.attr_str("op", op);
        sp.attr_u64("nnz", out.nnz() as u64);
    }
    out
}

/// Serial dense backend.
#[derive(Clone, Debug, Default)]
pub struct DenseEngine;

impl BoolEngine for DenseEngine {
    type Matrix = DenseBitMatrix;

    fn name(&self) -> &'static str {
        "dense"
    }
    fn zeros(&self, n: usize) -> DenseBitMatrix {
        DenseBitMatrix::zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> DenseBitMatrix {
        DenseBitMatrix::from_pairs(n, pairs)
    }
    fn multiply(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        traced_kernel("dense", "mul", || a.multiply(b))
    }
    fn union_in_place(&self, a: &mut DenseBitMatrix, b: &DenseBitMatrix) -> bool {
        a.union_in_place(b)
    }
    fn union_pairs(&self, a: &mut DenseBitMatrix, pairs: &[(u32, u32)]) -> bool {
        a.insert_pairs(pairs)
    }
    fn grow(&self, a: &mut DenseBitMatrix, n: usize) {
        a.grow(n)
    }
    fn difference(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        a.difference(b)
    }
    fn intersect(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        a.intersect(b)
    }
    fn multiply_masked(
        &self,
        a: &DenseBitMatrix,
        b: &DenseBitMatrix,
        mask: &DenseBitMatrix,
    ) -> DenseBitMatrix {
        traced_kernel("dense", "masked", || a.multiply_masked(b, mask))
    }
}

/// Device-parallel dense backend — the stand-in for the paper's dGPU.
#[derive(Clone, Debug)]
pub struct ParDenseEngine {
    /// The execution device.
    pub device: Device,
}

impl ParDenseEngine {
    /// Creates the backend with the given device.
    pub fn new(device: Device) -> Self {
        Self { device }
    }
}

impl BoolEngine for ParDenseEngine {
    type Matrix = DenseBitMatrix;

    fn name(&self) -> &'static str {
        "dense-par"
    }
    fn zeros(&self, n: usize) -> DenseBitMatrix {
        DenseBitMatrix::zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> DenseBitMatrix {
        DenseBitMatrix::from_pairs(n, pairs)
    }
    fn multiply(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        traced_kernel("dense", "mul", || a.multiply_on(b, &self.device))
    }
    fn union_in_place(&self, a: &mut DenseBitMatrix, b: &DenseBitMatrix) -> bool {
        a.union_in_place(b)
    }
    fn union_pairs(&self, a: &mut DenseBitMatrix, pairs: &[(u32, u32)]) -> bool {
        a.insert_pairs(pairs)
    }
    fn grow(&self, a: &mut DenseBitMatrix, n: usize) {
        a.grow(n)
    }
    fn difference(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        a.difference(b)
    }
    fn intersect(&self, a: &DenseBitMatrix, b: &DenseBitMatrix) -> DenseBitMatrix {
        a.intersect(b)
    }
    fn multiply_batch(&self, jobs: &[(&DenseBitMatrix, &DenseBitMatrix)]) -> Vec<DenseBitMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device.par_map(jobs.to_vec(), |(a, b)| {
            traced_kernel("dense", "mul", || a.multiply(b))
        })
    }
    fn multiply_masked(
        &self,
        a: &DenseBitMatrix,
        b: &DenseBitMatrix,
        mask: &DenseBitMatrix,
    ) -> DenseBitMatrix {
        traced_kernel("dense", "masked", || {
            a.multiply_masked_on(b, mask, &self.device)
        })
    }
    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, DenseBitMatrix>]) -> Vec<DenseBitMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device.par_map(jobs.to_vec(), |(a, b, m)| match m {
            Some(m) => traced_kernel("dense", "masked", || a.multiply_masked(b, m)),
            None => traced_kernel("dense", "mul", || a.multiply(b)),
        })
    }
}

/// Serial CSR backend — the stand-in for the paper's sCPU.
#[derive(Clone, Debug, Default)]
pub struct SparseEngine;

impl BoolEngine for SparseEngine {
    type Matrix = CsrMatrix;

    fn name(&self) -> &'static str {
        "sparse"
    }
    fn zeros(&self, n: usize) -> CsrMatrix {
        CsrMatrix::zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> CsrMatrix {
        CsrMatrix::from_pairs(n, pairs)
    }
    fn multiply(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        traced_kernel("csr", "mul", || a.multiply(b))
    }
    fn union_in_place(&self, a: &mut CsrMatrix, b: &CsrMatrix) -> bool {
        a.union_in_place(b)
    }
    fn union_pairs(&self, a: &mut CsrMatrix, pairs: &[(u32, u32)]) -> bool {
        a.insert_pairs(pairs)
    }
    fn grow(&self, a: &mut CsrMatrix, n: usize) {
        a.grow(n)
    }
    fn difference(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        a.difference(b)
    }
    fn intersect(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        a.intersect(b)
    }
    fn multiply_masked(&self, a: &CsrMatrix, b: &CsrMatrix, mask: &CsrMatrix) -> CsrMatrix {
        traced_kernel("csr", "masked", || a.multiply_masked(b, mask))
    }
}

/// Device-parallel CSR backend — the stand-in for the paper's sGPU.
#[derive(Clone, Debug)]
pub struct ParSparseEngine {
    /// The execution device.
    pub device: Device,
}

impl ParSparseEngine {
    /// Creates the backend with the given device.
    pub fn new(device: Device) -> Self {
        Self { device }
    }
}

impl BoolEngine for ParSparseEngine {
    type Matrix = CsrMatrix;

    fn name(&self) -> &'static str {
        "sparse-par"
    }
    fn zeros(&self, n: usize) -> CsrMatrix {
        CsrMatrix::zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> CsrMatrix {
        CsrMatrix::from_pairs(n, pairs)
    }
    fn multiply(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        traced_kernel("csr", "mul", || a.multiply_on(b, &self.device))
    }
    fn union_in_place(&self, a: &mut CsrMatrix, b: &CsrMatrix) -> bool {
        a.union_in_place(b)
    }
    fn union_pairs(&self, a: &mut CsrMatrix, pairs: &[(u32, u32)]) -> bool {
        a.insert_pairs(pairs)
    }
    fn grow(&self, a: &mut CsrMatrix, n: usize) {
        a.grow(n)
    }
    fn difference(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        a.difference(b)
    }
    fn intersect(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        a.intersect(b)
    }
    fn multiply_batch(&self, jobs: &[(&CsrMatrix, &CsrMatrix)]) -> Vec<CsrMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device.par_map(jobs.to_vec(), |(a, b)| {
            traced_kernel("csr", "mul", || a.multiply(b))
        })
    }
    fn multiply_masked(&self, a: &CsrMatrix, b: &CsrMatrix, mask: &CsrMatrix) -> CsrMatrix {
        traced_kernel("csr", "masked", || {
            a.multiply_masked_on(b, mask, &self.device)
        })
    }
    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, CsrMatrix>]) -> Vec<CsrMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device.par_map(jobs.to_vec(), |(a, b, m)| match m {
            Some(m) => traced_kernel("csr", "masked", || a.multiply_masked(b, m)),
            None => traced_kernel("csr", "mul", || a.multiply(b)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_engine<E: BoolEngine>(e: &E) {
        let a = e.from_pairs(5, &[(0, 1), (4, 4)]);
        let b = e.from_pairs(5, &[(1, 2), (4, 4)]);
        let c = e.multiply(&a, &b);
        assert_eq!(c.pairs(), vec![(0, 2), (4, 4)]);
        let mut acc = e.zeros(5);
        assert!(e.union_in_place(&mut acc, &c));
        assert!(!e.union_in_place(&mut acc, &c));
        assert_eq!(acc.nnz(), 2);
        assert!(acc.get(0, 2));
        let diff = e.difference(&acc, &e.from_pairs(5, &[(0, 2)]));
        assert_eq!(diff.pairs(), vec![(4, 4)]);
        let inter = e.intersect(&acc, &e.from_pairs(5, &[(0, 2), (1, 1)]));
        assert_eq!(inter.pairs(), vec![(0, 2)]);
        let batch = e.multiply_batch(&[(&a, &b), (&b, &a)]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].pairs(), e.multiply(&a, &b).pairs());
        assert_eq!(batch[1].pairs(), e.multiply(&b, &a).pairs());

        // Masked-product contract: output disjoint from the mask, and
        // masked(a,b,m) ∪ (a×b ∩ m) == a×b.
        let mask = e.from_pairs(5, &[(0, 2), (3, 3)]);
        let masked = e.multiply_masked(&a, &b, &mask);
        assert!(e.intersect(&masked, &mask).pairs().is_empty());
        let product = e.multiply(&a, &b);
        let mut rebuilt = masked.clone();
        e.union_in_place(&mut rebuilt, &e.intersect(&product, &mask));
        assert_eq!(rebuilt.pairs(), product.pairs());
        let masked_batch =
            e.multiply_masked_batch(&[(&a, &b, Some(&mask)), (&a, &b, None), (&b, &a, None)]);
        assert_eq!(masked_batch.len(), 3);
        assert_eq!(masked_batch[0].pairs(), masked.pairs());
        assert_eq!(masked_batch[1].pairs(), product.pairs());
        assert_eq!(masked_batch[2].pairs(), e.multiply(&b, &a).pairs());
    }

    #[test]
    fn all_engines_behave_identically() {
        check_engine(&DenseEngine);
        check_engine(&SparseEngine);
        check_engine(&ParDenseEngine::new(Device::new(3)));
        check_engine(&ParSparseEngine::new(Device::new(3)));
        check_engine(&crate::TiledEngine::serial());
        check_engine(&crate::TiledEngine::new(Device::new(3)));
        check_engine(&crate::AdaptiveEngine::serial());
        check_engine(&crate::AdaptiveEngine::new(Device::new(3)));
    }

    #[test]
    fn engine_names() {
        assert_eq!(DenseEngine.name(), "dense");
        assert_eq!(SparseEngine.name(), "sparse");
        assert_eq!(ParDenseEngine::new(Device::new(2)).name(), "dense-par");
        assert_eq!(ParSparseEngine::new(Device::new(2)).name(), "sparse-par");
        assert_eq!(crate::TiledEngine::serial().name(), "tiled");
        assert_eq!(crate::AdaptiveEngine::serial().name(), "adaptive");
    }
}
