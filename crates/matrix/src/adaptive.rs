//! Density-adaptive engine: dense vs CSR vs tiled, chosen per matrix.
//!
//! The paper's evaluation (§6) shows no single representation wins
//! everywhere: dense bitsets dominate small saturated closures, CSR wins
//! at low density, and the blocked layout of [`crate::tiled`] wins once
//! graphs outgrow a flat allocation. A fixpoint run mixes all three
//! regimes — terminal matrices stay sparse while closure nonterminals
//! saturate — so [`AdaptiveEngine`] re-evaluates each matrix's
//! representation at every in-place union, i.e. **per nonterminal per
//! sweep** of Algorithm 1, from its observed nnz.
//!
//! The policy is a cost model with hysteresis bands so a matrix
//! hovering at a threshold does not thrash:
//!
//! * **dense** — only for `n ≤ 2048` (one flat allocation stays
//!   cache-sized); enter at density ≥ 1/64 (one set bit per machine
//!   word), leave below 1/256.
//! * **tiled** — enter at mean row degree ≥ 8, leave below 4. Clustered
//!   closures pack those bits into few tiles, exactly where the blocked
//!   kernels win.
//! * **CSR** — everything else (the safe default; `zeros` always starts
//!   here).
//!
//! Conversions are counted in [`KernelCounters::repr_switches`] and only
//! happen when a matrix crosses a band or a product's operands disagree
//! — a kernel always runs in one representation, so the smaller operands
//! convert to the representation of the participant holding the most
//! structure (tiled > dense > CSR).

use crate::dense::DenseBitMatrix;
use crate::device::Device;
use crate::engine::{BoolEngine, BoolMat, KernelCounters, MaskedJob};
use crate::length::{CsrLenMatrix, LenEngine, LenJob};
use crate::sparse::CsrMatrix;
use crate::tiled::{TiledBitMatrix, TiledEngine};
use crate::ParSparseEngine;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Largest `n` the adaptive policy will hold a flat dense matrix for.
pub const DENSE_MAX_N: usize = 2048;
/// Mean row degree at which a matrix converts *to* the tiled layout.
const TILED_ENTER_ROW_NNZ: usize = 8;
/// Mean row degree below which a tiled matrix converts back to CSR.
const TILED_LEAVE_ROW_NNZ: usize = 4;

/// The representation an [`AdaptiveMatrix`] currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repr {
    /// Flat row-major bitset ([`DenseBitMatrix`]).
    Dense,
    /// Boolean CSR ([`CsrMatrix`]).
    Csr,
    /// CSR-of-tiles ([`TiledBitMatrix`]).
    Tiled,
}

impl Repr {
    /// Short lowercase name (matches the kernel-span `repr` attribute).
    pub fn name(self) -> &'static str {
        match self {
            Repr::Dense => "dense",
            Repr::Csr => "csr",
            Repr::Tiled => "tiled",
        }
    }
}

/// A Boolean matrix that is dense, CSR, or tiled underneath — the
/// matrix type of [`AdaptiveEngine`]. Equality is *semantic*: two
/// adaptive matrices holding different representations compare equal iff
/// they contain the same pairs.
#[derive(Clone, Debug)]
pub enum AdaptiveMatrix {
    /// Flat dense bitset payload.
    Dense(DenseBitMatrix),
    /// Boolean CSR payload.
    Csr(CsrMatrix),
    /// Block-tiled payload.
    Tiled(TiledBitMatrix),
}

impl AdaptiveMatrix {
    /// The representation currently held.
    pub fn repr(&self) -> Repr {
        match self {
            AdaptiveMatrix::Dense(_) => Repr::Dense,
            AdaptiveMatrix::Csr(_) => Repr::Csr,
            AdaptiveMatrix::Tiled(_) => Repr::Tiled,
        }
    }

    fn dim(&self) -> usize {
        match self {
            AdaptiveMatrix::Dense(m) => m.n(),
            AdaptiveMatrix::Csr(m) => m.n(),
            AdaptiveMatrix::Tiled(m) => m.n(),
        }
    }

    fn count(&self) -> usize {
        match self {
            AdaptiveMatrix::Dense(m) => m.nnz(),
            AdaptiveMatrix::Csr(m) => m.nnz(),
            AdaptiveMatrix::Tiled(m) => m.nnz(),
        }
    }

    fn build(repr: Repr, n: usize, pairs: &[(u32, u32)]) -> AdaptiveMatrix {
        match repr {
            Repr::Dense => AdaptiveMatrix::Dense(DenseBitMatrix::from_pairs(n, pairs)),
            Repr::Csr => AdaptiveMatrix::Csr(CsrMatrix::from_pairs(n, pairs)),
            Repr::Tiled => AdaptiveMatrix::Tiled(TiledBitMatrix::from_pairs(n, pairs)),
        }
    }

    fn converted(&self, repr: Repr) -> AdaptiveMatrix {
        debug_assert_ne!(self.repr(), repr);
        Self::build(repr, self.dim(), &self.pairs())
    }

    fn as_dense(&self) -> &DenseBitMatrix {
        match self {
            AdaptiveMatrix::Dense(m) => m,
            _ => unreachable!("operand was aligned to the dense representation"),
        }
    }

    fn as_csr(&self) -> &CsrMatrix {
        match self {
            AdaptiveMatrix::Csr(m) => m,
            _ => unreachable!("operand was aligned to the CSR representation"),
        }
    }

    fn as_tiled(&self) -> &TiledBitMatrix {
        match self {
            AdaptiveMatrix::Tiled(m) => m,
            _ => unreachable!("operand was aligned to the tiled representation"),
        }
    }
}

impl PartialEq for AdaptiveMatrix {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AdaptiveMatrix::Dense(a), AdaptiveMatrix::Dense(b)) => a == b,
            (AdaptiveMatrix::Csr(a), AdaptiveMatrix::Csr(b)) => a == b,
            (AdaptiveMatrix::Tiled(a), AdaptiveMatrix::Tiled(b)) => a == b,
            (a, b) => a.dim() == b.dim() && a.pairs() == b.pairs(),
        }
    }
}

impl Eq for AdaptiveMatrix {}

impl BoolMat for AdaptiveMatrix {
    fn n(&self) -> usize {
        self.dim()
    }
    fn get(&self, i: u32, j: u32) -> bool {
        match self {
            AdaptiveMatrix::Dense(m) => m.get(i, j),
            AdaptiveMatrix::Csr(m) => m.get(i, j),
            AdaptiveMatrix::Tiled(m) => m.get(i, j),
        }
    }
    fn nnz(&self) -> usize {
        self.count()
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        match self {
            AdaptiveMatrix::Dense(m) => m.pairs(),
            AdaptiveMatrix::Csr(m) => m.pairs(),
            AdaptiveMatrix::Tiled(m) => m.pairs(),
        }
    }
}

/// The hysteresis policy: which representation should a matrix of
/// dimension `n` with `nnz` set bits hold, given what it holds now?
fn preferred(n: usize, nnz: usize, current: Repr) -> Repr {
    if n == 0 {
        return Repr::Csr;
    }
    let cells = n.saturating_mul(n);
    if n <= DENSE_MAX_N {
        let enter = nnz.saturating_mul(64) >= cells;
        let stay = current == Repr::Dense && nnz.saturating_mul(256) >= cells;
        if enter || stay {
            return Repr::Dense;
        }
    }
    let enter = nnz >= n.saturating_mul(TILED_ENTER_ROW_NNZ);
    let stay = current == Repr::Tiled && nnz >= n.saturating_mul(TILED_LEAVE_ROW_NNZ);
    if enter || stay {
        return Repr::Tiled;
    }
    Repr::Csr
}

/// The representation a product runs in: that of the participant with
/// the most structure. Tiled outranks dense outranks CSR — the mask (the
/// accumulated closure, usually the largest participant) is a
/// participant too, so delta products against a tiled closure run tiled.
fn kernel_repr(reprs: impl IntoIterator<Item = Repr>) -> Repr {
    let mut best = Repr::Csr;
    for r in reprs {
        match (r, best) {
            (Repr::Tiled, _) => return Repr::Tiled,
            (Repr::Dense, Repr::Csr) => best = Repr::Dense,
            _ => {}
        }
    }
    best
}

/// The density-adaptive backend. Holds a [`Device`] for its parallel
/// kernels and an embedded [`TiledEngine`] so tile-skip accounting flows
/// into the same [`KernelCounters`] stream; clones share both counters.
#[derive(Clone, Debug)]
pub struct AdaptiveEngine {
    /// The execution device.
    pub device: Device,
    tiled: TiledEngine,
    repr_switches: Arc<AtomicU64>,
}

impl AdaptiveEngine {
    /// Creates the backend with the given device.
    pub fn new(device: Device) -> Self {
        Self {
            tiled: TiledEngine::new(device.clone()),
            device,
            repr_switches: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A serial adaptive backend (inline device, no extra threads).
    pub fn serial() -> Self {
        Self::new(Device::new(1))
    }

    fn align<'m>(&self, m: &'m AdaptiveMatrix, repr: Repr) -> Cow<'m, AdaptiveMatrix> {
        if m.repr() == repr {
            Cow::Borrowed(m)
        } else {
            self.repr_switches.fetch_add(1, Ordering::Relaxed);
            Cow::Owned(m.converted(repr))
        }
    }

    /// Re-evaluates `a`'s representation from its current nnz — the per
    /// nonterminal / per sweep decision point, called after every
    /// in-place union.
    fn rebalance(&self, a: &mut AdaptiveMatrix) {
        let target = preferred(a.dim(), a.count(), a.repr());
        if target != a.repr() {
            self.repr_switches.fetch_add(1, Ordering::Relaxed);
            *a = a.converted(target);
        }
    }

    /// One product, all operands aligned to the kernel representation.
    /// `device: None` means a strictly serial kernel (safe inside a
    /// device task — the batch entry points run there).
    fn product(
        &self,
        a: &AdaptiveMatrix,
        b: &AdaptiveMatrix,
        mask: Option<&AdaptiveMatrix>,
        device: Option<&Device>,
    ) -> AdaptiveMatrix {
        let mut sp = cfpq_obs::span("kernel");
        let masked = mask.is_some();
        let repr = kernel_repr(
            [Some(a), Some(b), mask]
                .into_iter()
                .flatten()
                .map(|m| m.repr()),
        );
        let a = self.align(a, repr);
        let b = self.align(b, repr);
        let mask = mask.map(|m| self.align(m, repr));
        let mask = mask.as_deref();
        let mut skipped_tiles = 0u64;
        let out = match repr {
            Repr::Dense => {
                let (a, b) = (a.as_dense(), b.as_dense());
                AdaptiveMatrix::Dense(match (mask, device) {
                    (Some(m), Some(d)) => a.multiply_masked_on(b, m.as_dense(), d),
                    (Some(m), None) => a.multiply_masked(b, m.as_dense()),
                    (None, Some(d)) => a.multiply_on(b, d),
                    (None, None) => a.multiply(b),
                })
            }
            Repr::Csr => {
                let (a, b) = (a.as_csr(), b.as_csr());
                AdaptiveMatrix::Csr(match (mask, device) {
                    (Some(m), Some(d)) => a.multiply_masked_on(b, m.as_csr(), d),
                    (Some(m), None) => a.multiply_masked(b, m.as_csr()),
                    (None, Some(d)) => a.multiply_on(b, d),
                    (None, None) => a.multiply(b),
                })
            }
            Repr::Tiled => {
                let (c, skipped) = a.as_tiled().multiply_masked_opt_on(
                    b.as_tiled(),
                    mask.map(|m| m.as_tiled()),
                    device,
                );
                self.tiled.note_skipped(skipped);
                skipped_tiles = skipped;
                AdaptiveMatrix::Tiled(c)
            }
        };
        if sp.is_recording() {
            sp.attr_str("repr", repr.name());
            sp.attr_str("op", if masked { "masked" } else { "mul" });
            sp.attr_u64("nnz", out.nnz() as u64);
            if repr == Repr::Tiled {
                sp.attr_u64("tiles_skipped", skipped_tiles);
            }
        }
        out
    }

    fn len_engine(&self) -> ParSparseEngine {
        ParSparseEngine::new(self.device.clone())
    }
}

impl Default for AdaptiveEngine {
    fn default() -> Self {
        Self::serial()
    }
}

impl BoolEngine for AdaptiveEngine {
    type Matrix = AdaptiveMatrix;

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn zeros(&self, n: usize) -> AdaptiveMatrix {
        AdaptiveMatrix::Csr(CsrMatrix::zeros(n))
    }

    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> AdaptiveMatrix {
        AdaptiveMatrix::build(preferred(n, pairs.len(), Repr::Csr), n, pairs)
    }

    fn multiply(&self, a: &AdaptiveMatrix, b: &AdaptiveMatrix) -> AdaptiveMatrix {
        self.product(a, b, None, Some(&self.device))
    }

    fn union_in_place(&self, a: &mut AdaptiveMatrix, b: &AdaptiveMatrix) -> bool {
        let b = self.align(b, a.repr());
        let changed = match (&mut *a, &*b) {
            (AdaptiveMatrix::Dense(a), AdaptiveMatrix::Dense(b)) => a.union_in_place(b),
            (AdaptiveMatrix::Csr(a), AdaptiveMatrix::Csr(b)) => a.union_in_place(b),
            (AdaptiveMatrix::Tiled(a), AdaptiveMatrix::Tiled(b)) => a.union_in_place(b),
            _ => unreachable!("operand was aligned to the accumulator's representation"),
        };
        if changed {
            self.rebalance(a);
        }
        changed
    }

    fn union_pairs(&self, a: &mut AdaptiveMatrix, pairs: &[(u32, u32)]) -> bool {
        let changed = match a {
            AdaptiveMatrix::Dense(m) => m.insert_pairs(pairs),
            AdaptiveMatrix::Csr(m) => m.insert_pairs(pairs),
            AdaptiveMatrix::Tiled(m) => m.insert_pairs(pairs),
        };
        if changed {
            self.rebalance(a);
        }
        changed
    }

    fn grow(&self, a: &mut AdaptiveMatrix, n: usize) {
        match a {
            AdaptiveMatrix::Dense(m) => m.grow(n),
            AdaptiveMatrix::Csr(m) => m.grow(n),
            AdaptiveMatrix::Tiled(m) => m.grow(n),
        }
    }

    fn difference(&self, a: &AdaptiveMatrix, b: &AdaptiveMatrix) -> AdaptiveMatrix {
        let b = self.align(b, a.repr());
        match (a, &*b) {
            (AdaptiveMatrix::Dense(a), AdaptiveMatrix::Dense(b)) => {
                AdaptiveMatrix::Dense(a.difference(b))
            }
            (AdaptiveMatrix::Csr(a), AdaptiveMatrix::Csr(b)) => {
                AdaptiveMatrix::Csr(a.difference(b))
            }
            (AdaptiveMatrix::Tiled(a), AdaptiveMatrix::Tiled(b)) => {
                AdaptiveMatrix::Tiled(a.difference(b))
            }
            _ => unreachable!("operand was aligned to the left representation"),
        }
    }

    fn intersect(&self, a: &AdaptiveMatrix, b: &AdaptiveMatrix) -> AdaptiveMatrix {
        let b = self.align(b, a.repr());
        match (a, &*b) {
            (AdaptiveMatrix::Dense(a), AdaptiveMatrix::Dense(b)) => {
                AdaptiveMatrix::Dense(a.intersect(b))
            }
            (AdaptiveMatrix::Csr(a), AdaptiveMatrix::Csr(b)) => AdaptiveMatrix::Csr(a.intersect(b)),
            (AdaptiveMatrix::Tiled(a), AdaptiveMatrix::Tiled(b)) => {
                AdaptiveMatrix::Tiled(a.intersect(b))
            }
            _ => unreachable!("operand was aligned to the left representation"),
        }
    }

    fn multiply_batch(&self, jobs: &[(&AdaptiveMatrix, &AdaptiveMatrix)]) -> Vec<AdaptiveMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device
            .par_map(jobs.to_vec(), |(a, b)| self.product(a, b, None, None))
    }

    fn multiply_masked(
        &self,
        a: &AdaptiveMatrix,
        b: &AdaptiveMatrix,
        mask: &AdaptiveMatrix,
    ) -> AdaptiveMatrix {
        self.product(a, b, Some(mask), Some(&self.device))
    }

    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, AdaptiveMatrix>]) -> Vec<AdaptiveMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device
            .par_map(jobs.to_vec(), |(a, b, m)| self.product(a, b, m, None))
    }

    fn kernel_counters(&self) -> KernelCounters {
        KernelCounters {
            tiles_skipped: self.tiled.kernel_counters().tiles_skipped,
            repr_switches: self.repr_switches.load(Ordering::Relaxed),
        }
    }
}

impl LenEngine for AdaptiveEngine {
    type LenMatrix = CsrLenMatrix;

    fn len_empty(&self, n: usize) -> CsrLenMatrix {
        self.len_engine().len_empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> CsrLenMatrix {
        self.len_engine().len_from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut CsrLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        self.len_engine().len_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &CsrLenMatrix,
        b: &CsrLenMatrix,
        mask: Option<&CsrLenMatrix>,
    ) -> CsrLenMatrix {
        self.len_engine().len_multiply_masked(a, b, mask)
    }
    fn len_multiply_masked_batch(&self, jobs: &[LenJob<'_, CsrLenMatrix>]) -> Vec<CsrLenMatrix> {
        self.len_engine().len_multiply_masked_batch(jobs)
    }
    fn len_merge_absent(&self, acc: &mut CsrLenMatrix, add: &CsrLenMatrix) -> CsrLenMatrix {
        self.len_engine().len_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut CsrLenMatrix, n: usize) {
        self.len_engine().len_grow(a, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..count)
            .map(|_| (next() % n as u32, next() % n as u32))
            .collect()
    }

    #[test]
    fn from_pairs_picks_by_density() {
        let e = AdaptiveEngine::serial();
        assert_eq!(e.zeros(100).repr(), Repr::Csr);
        // 100×100 with 400 bits: density 1/25 ≥ 1/64 → dense.
        let dense = e.from_pairs(100, &pseudo_pairs(100, 400, 1));
        assert_eq!(dense.repr(), Repr::Dense);
        // 4000×4000 (> DENSE_MAX_N) with 40000 bits: 10 per row → tiled.
        let tiled = e.from_pairs(4000, &pseudo_pairs(4000, 40_000, 2));
        assert_eq!(tiled.repr(), Repr::Tiled);
        // 4000×4000 with 4000 bits: 1 per row → CSR.
        let csr = e.from_pairs(4000, &pseudo_pairs(4000, 4000, 3));
        assert_eq!(csr.repr(), Repr::Csr);
    }

    #[test]
    fn hysteresis_has_a_dead_band() {
        // Between leave (1/256) and enter (1/64) density, a dense matrix
        // stays dense and a CSR matrix stays CSR.
        let n = 1024;
        let nnz = 6 * n; // density 1/170: inside (1/256, 1/64), below 8/row
        assert_eq!(preferred(n, nnz, Repr::Dense), Repr::Dense);
        assert_eq!(preferred(n, nnz, Repr::Csr), Repr::Csr);
        // Between tiled leave (4/row) and enter (8/row) likewise.
        let n = 4096;
        assert_eq!(preferred(n, 6 * n, Repr::Tiled), Repr::Tiled);
        assert_eq!(preferred(n, 6 * n, Repr::Csr), Repr::Csr);
    }

    #[test]
    fn mixed_representation_product_matches_reference() {
        let e = AdaptiveEngine::serial();
        let n = 157;
        let pa = pseudo_pairs(n, 700, 0xA);
        let pb = pseudo_pairs(n, 40, 0xB);
        let a = e.from_pairs(n, &pa); // dense at this density
        let b = AdaptiveMatrix::Tiled(TiledBitMatrix::from_pairs(n, &pb));
        assert_ne!(a.repr(), b.repr());
        let product = e.multiply(&a, &b);
        let da = DenseBitMatrix::from_pairs(n, &pa);
        let db = DenseBitMatrix::from_pairs(n, &pb);
        assert_eq!(product.pairs(), da.multiply(&db).pairs());
        assert!(e.kernel_counters().repr_switches > 0, "conversion counted");
    }

    #[test]
    fn union_rebalances_and_counts_switches() {
        let e = AdaptiveEngine::serial();
        let n = 256;
        let mut acc = e.zeros(n);
        assert_eq!(acc.repr(), Repr::Csr);
        // Saturate it: density 1 ⇒ must flip to dense.
        let mut all = Vec::new();
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                all.push((i, j));
            }
        }
        let full = AdaptiveMatrix::Csr(CsrMatrix::from_pairs(n, &all));
        assert!(e.union_in_place(&mut acc, &full));
        assert_eq!(acc.repr(), Repr::Dense);
        assert!(e.kernel_counters().repr_switches >= 1);
        assert_eq!(acc.nnz(), n * n);
    }

    #[test]
    fn semantic_equality_across_representations() {
        let pairs = [(0, 1), (70, 70), (99, 0)];
        let d = AdaptiveMatrix::Dense(DenseBitMatrix::from_pairs(100, &pairs));
        let c = AdaptiveMatrix::Csr(CsrMatrix::from_pairs(100, &pairs));
        let t = AdaptiveMatrix::Tiled(TiledBitMatrix::from_pairs(100, &pairs));
        assert_eq!(d, c);
        assert_eq!(c, t);
        assert_eq!(d, t);
        assert_ne!(
            d,
            AdaptiveMatrix::Csr(CsrMatrix::from_pairs(100, &[(0, 1)]))
        );
    }

    #[test]
    fn masked_contract_holds_across_mixed_operands() {
        let e = AdaptiveEngine::serial();
        let n = 157;
        let a = AdaptiveMatrix::Csr(CsrMatrix::from_pairs(n, &pseudo_pairs(n, 300, 1)));
        let b = AdaptiveMatrix::Dense(DenseBitMatrix::from_pairs(n, &pseudo_pairs(n, 300, 2)));
        let m = AdaptiveMatrix::Tiled(TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 900, 3)));
        let masked = e.multiply_masked(&a, &b, &m);
        assert!(e.intersect(&masked, &m).pairs().is_empty());
        let product = e.multiply(&a, &b);
        let mut rebuilt = masked.clone();
        e.union_in_place(&mut rebuilt, &e.intersect(&product, &m));
        assert_eq!(rebuilt.pairs(), product.pairs());
    }

    #[test]
    fn batch_matches_scalar_products() {
        let e = AdaptiveEngine::new(Device::new(3));
        let n = 200;
        let a = e.from_pairs(n, &pseudo_pairs(n, 500, 4));
        let b = e.from_pairs(n, &pseudo_pairs(n, 500, 5));
        let m = e.from_pairs(n, &pseudo_pairs(n, 500, 6));
        let batch = e.multiply_masked_batch(&[(&a, &b, Some(&m)), (&b, &a, None)]);
        assert_eq!(batch[0].pairs(), e.multiply_masked(&a, &b, &m).pairs());
        assert_eq!(batch[1].pairs(), e.multiply(&b, &a).pairs());
    }
}
