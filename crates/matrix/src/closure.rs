//! Transitive closures over set-valued matrices: `a_cf` vs `a⁺`.
//!
//! §2 of the paper defines two closures of a square matrix `a` over the
//! grammar algebra:
//!
//! * Valiant's `a⁺ = a⁺⁽¹⁾ ∪ a⁺⁽²⁾ ∪ …` with
//!   `a⁺⁽ⁱ⁾ = ⋃ⱼ a⁺⁽ʲ⁾ × a⁺⁽ⁱ⁻ʲ⁾`, and
//! * the squaring closure `a_cf = a⁽¹⁾ ∪ a⁽²⁾ ∪ …` with
//!   `a⁽ⁱ⁾ = a⁽ⁱ⁻¹⁾ ∪ (a⁽ⁱ⁻¹⁾ × a⁽ⁱ⁻¹⁾)`,
//!
//! and Theorem 1 proves them equal. This module computes both (the former
//! term-by-term, the latter as the fixpoint loop of Algorithm 1) so the
//! theorem can be checked mechanically; `squaring_closure` is also the
//! reference implementation the `cfpq-core` solvers are validated against.

use crate::setmatrix::SetMatrix;
use cfpq_grammar::wcnf::BinaryRule;

/// Result of a closure computation with iteration diagnostics.
#[derive(Clone, Debug)]
pub struct ClosureResult {
    /// The closed matrix.
    pub matrix: SetMatrix,
    /// Number of fixpoint iterations executed (the `k` with `T_k = T_{k-1}`
    /// in §4.3; the worked example reaches it at k = 6).
    pub iterations: usize,
    /// Matrix snapshots `T_0, T_1, …` per iteration if requested
    /// (used to replay Fig. 6–8 cell by cell).
    pub snapshots: Vec<SetMatrix>,
}

/// Computes `a_cf` by the squaring loop `T ← T ∪ (T × T)` until fixpoint —
/// Algorithm 1 lines 8–9 in its literal, set-matrix form.
///
/// With `keep_snapshots`, every intermediate `T_i` (including `T_0 = a`)
/// is recorded.
pub fn squaring_closure(
    a: &SetMatrix,
    rules: &[BinaryRule],
    keep_snapshots: bool,
) -> ClosureResult {
    let mut t = a.clone();
    let mut snapshots = Vec::new();
    if keep_snapshots {
        snapshots.push(t.clone());
    }
    let mut iterations = 0;
    loop {
        iterations += 1;
        let product = t.multiply(&t, rules);
        let changed = t.union_in_place(&product);
        if keep_snapshots {
            snapshots.push(t.clone());
        }
        if !changed {
            break;
        }
    }
    ClosureResult {
        matrix: t,
        iterations,
        snapshots,
    }
}

/// Computes the partial union `⋃_{i=1..k} a⁺⁽ⁱ⁾` of Valiant's transitive
/// closure, materializing each term `a⁺⁽ⁱ⁾` by its definition. Exponential
/// in memory over `k` terms is avoided by storing all previous terms
/// (`O(k)` matrices) — fine for the small matrices Theorem-1 tests use.
pub fn valiant_closure_terms(a: &SetMatrix, rules: &[BinaryRule], k: usize) -> SetMatrix {
    assert!(k >= 1);
    let mut terms: Vec<SetMatrix> = vec![a.clone()];
    let mut union = a.clone();
    for i in 2..=k {
        // a_+^(i) = ⋃_{j=1}^{i-1} a_+^(j) × a_+^(i-j)
        let mut term = SetMatrix::empty(a.n(), a.n_nts());
        for j in 1..i {
            let product = terms[j - 1].multiply(&terms[i - j - 1], rules);
            term.union_in_place(&product);
        }
        union.union_in_place(&term);
        terms.push(term);
    }
    union
}

/// Checks Theorem 1 on a concrete instance: iterates Valiant's union until
/// it reaches `a_cf` (or `max_k` terms), returning the number of terms
/// needed. `None` means the bound was hit — a test failure upstream.
pub fn theorem1_terms_needed(a: &SetMatrix, rules: &[BinaryRule], max_k: usize) -> Option<usize> {
    let target = squaring_closure(a, rules, false).matrix;
    for k in 1..=max_k {
        let u = valiant_closure_terms(a, rules, k);
        // Lemma 2.1 direction: the partial union never exceeds a_cf.
        assert!(
            target.dominates(&u),
            "a+ partial union exceeded a_cf — contradiction with Lemma 2.1"
        );
        if u == target {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::random::{random_wcnf, RandomGrammarConfig};
    use cfpq_grammar::{Cfg, Wcnf};

    fn an_bn() -> Wcnf {
        Cfg::parse("S -> a S b | a b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    /// Initializes a set matrix from labeled edges using terminal rules,
    /// mirroring Algorithm 1 lines 6–7 for a tiny inline "graph".
    fn init(g: &Wcnf, n: usize, edges: &[(u32, &str, u32)]) -> SetMatrix {
        let mut m = SetMatrix::empty(n, g.n_nts());
        for &(i, label, j) in edges {
            let t = g.symbols.get_term(label).unwrap();
            for r in &g.term_rules {
                if r.term == t {
                    m.insert(i, j, r.lhs);
                }
            }
        }
        m
    }

    #[test]
    fn squaring_closure_on_chain() {
        // Chain a a b b: S spans (0,4) and (1,3).
        let g = an_bn();
        let s = g.symbols.get_nt("S").unwrap();
        let m = init(&g, 5, &[(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 4)]);
        let r = squaring_closure(&m, &g.binary_rules, false);
        assert!(r.matrix.contains(0, 4, s));
        assert!(r.matrix.contains(1, 3, s));
        assert!(!r.matrix.contains(0, 3, s));
        assert!(!r.matrix.contains(1, 4, s));
    }

    #[test]
    fn closure_is_idempotent() {
        let g = an_bn();
        let m = init(&g, 3, &[(0, "a", 1), (1, "b", 2), (2, "a", 0)]);
        let once = squaring_closure(&m, &g.binary_rules, false).matrix;
        let twice = squaring_closure(&once, &g.binary_rules, false).matrix;
        assert_eq!(once, twice);
    }

    #[test]
    fn snapshots_are_monotone() {
        let g = an_bn();
        let m = init(&g, 4, &[(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 0)]);
        let r = squaring_closure(&m, &g.binary_rules, true);
        assert_eq!(r.snapshots.len(), r.iterations + 1);
        for w in r.snapshots.windows(2) {
            assert!(w[1].dominates(&w[0]), "T_{{i+1}} ⪰ T_i");
        }
        assert_eq!(r.snapshots.last().unwrap(), &r.matrix);
    }

    #[test]
    fn theorem1_on_cycle_instance() {
        // A cyclic instance — the case Yannakakis conjectured Valiant's
        // technique would not generalize to (§3).
        let g = an_bn();
        let m = init(
            &g,
            4,
            &[
                (0, "a", 1),
                (1, "a", 2),
                (2, "b", 3),
                (3, "b", 0),
                (0, "b", 0),
            ],
        );
        let k = theorem1_terms_needed(&m, &g.binary_rules, 64);
        assert!(k.is_some(), "a+ must converge to a_cf (Theorem 1)");
    }

    #[test]
    fn theorem1_on_random_instances() {
        for seed in 0..10u64 {
            let g = random_wcnf(seed, RandomGrammarConfig::default());
            let n = 4usize;
            let mut m = SetMatrix::empty(n, g.n_nts());
            // Random initialization from terminal rules.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..6 {
                let i = (next() % n as u64) as u32;
                let j = (next() % n as u64) as u32;
                let r = &g.term_rules[(next() as usize) % g.term_rules.len()];
                m.insert(i, j, r.lhs);
            }
            let k = theorem1_terms_needed(&m, &g.binary_rules, 128);
            assert!(k.is_some(), "Theorem 1 failed for seed {seed}");
        }
    }

    #[test]
    fn empty_matrix_closure_is_empty() {
        let g = an_bn();
        let m = SetMatrix::empty(3, g.n_nts());
        let r = squaring_closure(&m, &g.binary_rules, false);
        assert_eq!(r.matrix.total_entries(), 0);
        assert_eq!(r.iterations, 1);
    }
}
