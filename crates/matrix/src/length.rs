//! Length-annotated Boolean matrices — the kernel layer of the paper's
//! single-path semantics (§5).
//!
//! §5 modifies the closure so that every stored cell carries the length
//! of *some* witness path, with a **first-write-wins** discipline ("if
//! some nonterminal A with an associated path length l₁ is in a⁽ᵖ⁾ᵢⱼ
//! then A is not added … with length l₂ for l₂ ≠ l₁"): once a cell is
//! set it is never updated, so the recorded split lengths stay valid
//! forever and Theorem 5's witness extraction terminates. On the matrix
//! level that discipline *is* the masked-kernel contract of the
//! relational pipeline — a product must only ever emit cells the
//! accumulator does not hold yet — so the same dense/CSR × serial/device
//! engine matrix the Boolean kernels live on carries over verbatim:
//!
//! * [`DenseLenMatrix`] — row-major `u32` lengths (the dGPU-style
//!   representation),
//! * [`CsrLenMatrix`] — CSR with a parallel value array (the sCPU/sGPU
//!   representation),
//! * [`LenEngine`] — the backend abstraction, implemented by the same
//!   four engine types as [`crate::BoolEngine`].
//!
//! # The absent sentinel
//!
//! A cell value of [`NO_PATH`] (`u32::MAX`) means *absent*. `0` is a
//! **present** value: the ε-witness of a nullable nonterminal at a
//! diagonal cell `(m, m)` (the empty path `mπm`). Because the weak-CNF
//! grammars the solvers consume are ε-eliminated, every nonempty witness
//! has an ε-free derivation — so the kernels skip length-0 cells as
//! *operands* (composing through an ε-entry can never produce a pair the
//! ε-free closure misses, and skipping keeps every stored split
//! well-founded: a product cell always decomposes into two strictly
//! shorter *nonzero* parts, and a length-1 cell is always a direct
//! edge).

use crate::engine::{DenseEngine, ParDenseEngine, ParSparseEngine, SparseEngine};

/// The *absent* sentinel of length matrices. Any other value — including
/// `0`, the ε-witness — is a present path length.
pub const NO_PATH: u32 = u32::MAX;

/// Ceiling for stored lengths: additions saturate here so a pathological
/// closure cannot wrap around into [`NO_PATH`].
const MAX_LEN: u32 = u32::MAX - 1;

/// Minimal interface of a length-annotated matrix, mirroring
/// [`crate::BoolMat`] with `Option<u32>` cells (and the same
/// `Send + Sync + 'static` bound — length closures are shared between
/// reader threads by the `cfpq-service` snapshot layer).
pub trait LenMat: Clone + PartialEq + Send + Sync + 'static {
    /// Matrix dimension `n`.
    fn n(&self) -> usize;
    /// The stored length at `(i, j)`, if the cell is present.
    fn get(&self, i: u32, j: u32) -> Option<u32>;
    /// Number of present cells.
    fn nnz(&self) -> usize;
    /// All present `(row, col)` pairs in row-major order.
    fn pairs(&self) -> Vec<(u32, u32)>;
    /// All present `(row, col, length)` entries in row-major order.
    fn entries(&self) -> Vec<(u32, u32, u32)>;
}

/// One job of a [`LenEngine::len_multiply_masked_batch`]: operands
/// `(a, b)` plus an optional complement mask.
pub type LenJob<'a, M> = (&'a M, &'a M, Option<&'a M>);

/// A length-matrix backend: representation + execution strategy for the
/// §5 kernels. Implemented by the same four engine types as
/// [`crate::BoolEngine`], so a single generic single-path solver covers
/// the paper's representation × device matrix. Method names carry a
/// `len_` prefix to keep call sites unambiguous on types implementing
/// both traits.
pub trait LenEngine: Send + Sync {
    /// The length-matrix type this engine operates on.
    type LenMatrix: LenMat;

    /// The all-absent matrix of size `n × n`.
    fn len_empty(&self, n: usize) -> Self::LenMatrix;

    /// Builds a matrix from `(row, col, length)` entries;
    /// first-write-wins on duplicate cells.
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> Self::LenMatrix;

    /// Writes each entry only where the cell is absent (first-write-wins)
    /// and returns the entries genuinely written.
    fn len_set_absent(
        &self,
        a: &mut Self::LenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)>;

    /// The §5 length product: for every present `(i, k, l₁)` of `a` and
    /// `(k, j, l₂)` of `b` with `l₁, l₂ ≥ 1`, the output holds
    /// `(i, j, l₁ + l₂)` — first-write-wins per output cell. Length-0
    /// cells (ε-witnesses) do not act as operands (see the module docs).
    fn len_multiply(&self, a: &Self::LenMatrix, b: &Self::LenMatrix) -> Self::LenMatrix {
        self.len_multiply_masked(a, b, None)
    }

    /// [`LenEngine::len_multiply`] with a complement mask: cells present
    /// in `mask` are never emitted, so with the accumulated closure as
    /// the mask the product materializes exactly the *new* information —
    /// the first-write-wins discipline executed at kernel level.
    fn len_multiply_masked(
        &self,
        a: &Self::LenMatrix,
        b: &Self::LenMatrix,
        mask: Option<&Self::LenMatrix>,
    ) -> Self::LenMatrix;

    /// Computes several independent (optionally masked) products. The
    /// default runs them sequentially; device-backed engines dispatch one
    /// serial kernel per job to the pool, mirroring
    /// [`crate::BoolEngine::multiply_masked_batch`].
    fn len_multiply_masked_batch(
        &self,
        jobs: &[LenJob<'_, Self::LenMatrix>],
    ) -> Vec<Self::LenMatrix> {
        jobs.iter()
            .map(|&(a, b, m)| self.len_multiply_masked(a, b, m))
            .collect()
    }

    /// Merges `add` into `acc` where `acc` is absent (first-write-wins)
    /// and returns the matrix of genuinely-new cells — the Δ of the
    /// semi-naive length closure.
    fn len_merge_absent(&self, acc: &mut Self::LenMatrix, add: &Self::LenMatrix)
        -> Self::LenMatrix;

    /// Grows the matrix to `n × n` (new cells absent). `n` must not
    /// shrink the matrix.
    fn len_grow(&self, a: &mut Self::LenMatrix, n: usize);
}

/// Saturating witness-length addition, kept strictly below [`NO_PATH`].
#[inline]
fn add_len(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(MAX_LEN)
}

// ---------------------------------------------------------------------------
// Dense representation
// ---------------------------------------------------------------------------

/// A dense `n × n` length matrix stored row-major; [`NO_PATH`] = absent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseLenMatrix {
    n: usize,
    vals: Vec<u32>,
}

impl DenseLenMatrix {
    /// Creates the all-absent matrix of size `n × n`.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            vals: vec![NO_PATH; n * n],
        }
    }

    /// Builds from `(row, col, length)` entries, first-write-wins.
    pub fn from_entries(n: usize, entries: &[(u32, u32, u32)]) -> Self {
        let mut m = Self::empty(n);
        for &(i, j, l) in entries {
            m.set_if_absent(i, j, l);
        }
        m
    }

    /// Wraps a raw row-major value table (cells holding [`NO_PATH`] are
    /// absent). `vals.len()` must be `n × n`. This is the bridge from
    /// flat-table code — e.g. the naive single-path oracle — into the
    /// engine world.
    pub fn from_flat(n: usize, vals: Vec<u32>) -> Self {
        assert_eq!(vals.len(), n * n, "flat table must be n × n");
        Self { n, vals }
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw cell value ([`NO_PATH`] = absent).
    #[inline]
    pub fn raw(&self, i: u32, j: u32) -> u32 {
        self.vals[i as usize * self.n + j as usize]
    }

    /// The stored length at `(i, j)`, if present.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> Option<u32> {
        let l = self.raw(i, j);
        (l != NO_PATH).then_some(l)
    }

    /// Writes `(i, j) = l` only if the cell is absent; returns `true` if
    /// it was written.
    #[inline]
    pub fn set_if_absent(&mut self, i: u32, j: u32, l: u32) -> bool {
        debug_assert!((i as usize) < self.n && (j as usize) < self.n);
        debug_assert!(l != NO_PATH, "NO_PATH is the absent sentinel");
        let cell = &mut self.vals[i as usize * self.n + j as usize];
        if *cell == NO_PATH {
            *cell = l;
            true
        } else {
            false
        }
    }

    /// The values of row `i`.
    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.vals[i * self.n..(i + 1) * self.n]
    }

    /// Number of present cells.
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|&&l| l != NO_PATH).count()
    }

    /// Grows to `n × n`, keeping existing cells.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "length matrices only grow");
        if n == self.n {
            return;
        }
        let mut vals = vec![NO_PATH; n * n];
        for i in 0..self.n {
            vals[i * n..i * n + self.n].copy_from_slice(self.row(i));
        }
        self.n = n;
        self.vals = vals;
    }
}

impl LenMat for DenseLenMatrix {
    fn n(&self) -> usize {
        self.n
    }
    fn get(&self, i: u32, j: u32) -> Option<u32> {
        DenseLenMatrix::get(self, i, j)
    }
    fn nnz(&self) -> usize {
        DenseLenMatrix::nnz(self)
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        self.entries().into_iter().map(|(i, j, _)| (i, j)).collect()
    }
    fn entries(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for (j, &l) in self.row(i).iter().enumerate() {
                if l != NO_PATH {
                    out.push((i as u32, j as u32, l));
                }
            }
        }
        out
    }
}

/// Serial dense masked length product (shared by [`DenseEngine`] and, as
/// the per-job kernel, by [`ParDenseEngine`]).
fn dense_multiply_masked(
    a: &DenseLenMatrix,
    b: &DenseLenMatrix,
    mask: Option<&DenseLenMatrix>,
) -> DenseLenMatrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    if let Some(m) = mask {
        assert_eq!(a.n, m.n, "mask dimension mismatch");
    }
    let n = a.n;
    let mut out = DenseLenMatrix::empty(n);
    for i in 0..n {
        let arow = a.row(i);
        for (k, &la) in arow.iter().enumerate() {
            if la == NO_PATH || la == 0 {
                continue;
            }
            let brow = b.row(k);
            let orow = &mut out.vals[i * n..(i + 1) * n];
            match mask {
                Some(m) => {
                    let mrow = m.row(i);
                    for j in 0..n {
                        let lb = brow[j];
                        if lb == NO_PATH || lb == 0 || mrow[j] != NO_PATH || orow[j] != NO_PATH {
                            continue;
                        }
                        orow[j] = add_len(la, lb);
                    }
                }
                None => {
                    for j in 0..n {
                        let lb = brow[j];
                        if lb == NO_PATH || lb == 0 || orow[j] != NO_PATH {
                            continue;
                        }
                        orow[j] = add_len(la, lb);
                    }
                }
            }
        }
    }
    out
}

fn dense_merge_absent(acc: &mut DenseLenMatrix, add: &DenseLenMatrix) -> DenseLenMatrix {
    assert_eq!(acc.n, add.n, "dimension mismatch");
    let mut fresh = DenseLenMatrix::empty(acc.n);
    for ((dst, &src), out) in acc
        .vals
        .iter_mut()
        .zip(add.vals.iter())
        .zip(fresh.vals.iter_mut())
    {
        if src != NO_PATH && *dst == NO_PATH {
            *dst = src;
            *out = src;
        }
    }
    fresh
}

/// Shared `len_set_absent` for the dense representation.
fn dense_set_absent(a: &mut DenseLenMatrix, entries: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
    entries
        .iter()
        .filter(|&&(i, j, l)| a.set_if_absent(i, j, l))
        .copied()
        .collect()
}

impl LenEngine for DenseEngine {
    type LenMatrix = DenseLenMatrix;

    fn len_empty(&self, n: usize) -> DenseLenMatrix {
        DenseLenMatrix::empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> DenseLenMatrix {
        DenseLenMatrix::from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut DenseLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        dense_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &DenseLenMatrix,
        b: &DenseLenMatrix,
        mask: Option<&DenseLenMatrix>,
    ) -> DenseLenMatrix {
        dense_multiply_masked(a, b, mask)
    }
    fn len_merge_absent(&self, acc: &mut DenseLenMatrix, add: &DenseLenMatrix) -> DenseLenMatrix {
        dense_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut DenseLenMatrix, n: usize) {
        a.grow(n)
    }
}

impl LenEngine for ParDenseEngine {
    type LenMatrix = DenseLenMatrix;

    fn len_empty(&self, n: usize) -> DenseLenMatrix {
        DenseLenMatrix::empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> DenseLenMatrix {
        DenseLenMatrix::from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut DenseLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        dense_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &DenseLenMatrix,
        b: &DenseLenMatrix,
        mask: Option<&DenseLenMatrix>,
    ) -> DenseLenMatrix {
        dense_multiply_masked(a, b, mask)
    }
    fn len_multiply_masked_batch(
        &self,
        jobs: &[LenJob<'_, DenseLenMatrix>],
    ) -> Vec<DenseLenMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device
            .par_map(jobs.to_vec(), |(a, b, m)| dense_multiply_masked(a, b, m))
    }
    fn len_merge_absent(&self, acc: &mut DenseLenMatrix, add: &DenseLenMatrix) -> DenseLenMatrix {
        dense_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut DenseLenMatrix, n: usize) {
        a.grow(n)
    }
}

// ---------------------------------------------------------------------------
// CSR representation
// ---------------------------------------------------------------------------

/// An `n × n` length matrix in CSR format: per row, strictly-ascending
/// column indices with a parallel value array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrLenMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<u32>,
}

impl CsrLenMatrix {
    /// Creates the all-absent matrix of size `n × n`.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            row_ptr: vec![0; n + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from `(row, col, length)` entries, first-write-wins on
    /// duplicate cells (the first occurrence in `entries` is kept).
    pub fn from_entries(n: usize, entries: &[(u32, u32, u32)]) -> Self {
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &(i, j, l) in entries {
            debug_assert!((i as usize) < n && (j as usize) < n);
            debug_assert!(l != NO_PATH, "NO_PATH is the absent sentinel");
            rows[i as usize].push((j, l));
        }
        for r in &mut rows {
            // Stable sort keeps the first-written value of a duplicate
            // column adjacent and first.
            r.sort_by_key(|&(j, _)| j);
            r.dedup_by_key(|&mut (j, _)| j);
        }
        Self::from_rows(rows)
    }

    /// Assembles from per-row sorted, column-deduplicated `(col, len)`
    /// lists.
    fn from_rows(rows: Vec<Vec<(u32, u32)>>) -> Self {
        let n = rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut cols = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        for r in rows {
            debug_assert!(r.windows(2).all(|w| w[0].0 < w[1].0), "rows must be sorted");
            for (j, l) in r {
                cols.push(j);
                vals.push(l);
            }
            row_ptr.push(cols.len());
        }
        Self {
            n,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `(columns, lengths)` of row `i` (columns ascending).
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[u32]) {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.cols[r.clone()], &self.vals[r])
    }

    /// The stored length at `(i, j)`, if present.
    pub fn get(&self, i: u32, j: u32) -> Option<u32> {
        let (cols, vals) = self.row(i as usize);
        cols.binary_search(&j).ok().map(|p| vals[p])
    }

    /// Number of present cells.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Grows to `n × n`, keeping existing cells (a pure row append).
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "length matrices only grow");
        let last = *self.row_ptr.last().expect("row_ptr nonempty");
        self.row_ptr.resize(n + 1, last);
        self.n = n;
    }
}

impl LenMat for CsrLenMatrix {
    fn n(&self) -> usize {
        self.n
    }
    fn get(&self, i: u32, j: u32) -> Option<u32> {
        CsrLenMatrix::get(self, i, j)
    }
    fn nnz(&self) -> usize {
        CsrLenMatrix::nnz(self)
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            for &j in self.row(i).0 {
                out.push((i as u32, j));
            }
        }
        out
    }
    fn entries(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (&j, &l) in cols.iter().zip(vals) {
                out.push((i as u32, j, l));
            }
        }
        out
    }
}

/// A reusable accumulator for one output row of the CSR length product:
/// a dense value buffer ([`NO_PATH`]-initialized) with a sparse touched
/// list, plus a blocked set seeded from the complement-mask row.
struct LenRowAccumulator {
    vals: Vec<u32>,
    touched: Vec<u32>,
    blocked: Vec<u64>,
    blocked_touched: Vec<u32>,
}

impl LenRowAccumulator {
    fn new(n: usize) -> Self {
        Self {
            vals: vec![NO_PATH; n],
            touched: Vec::new(),
            blocked: vec![0; n.div_ceil(64).max(1)],
            blocked_touched: Vec::new(),
        }
    }

    /// Marks the mask row's columns as never-emit.
    fn seed_mask(&mut self, cols: &[u32]) {
        for &j in cols {
            let w = (j / 64) as usize;
            if self.blocked[w] == 0 {
                self.blocked_touched.push(w as u32);
            }
            self.blocked[w] |= 1u64 << (j % 64);
        }
    }

    fn clear_mask(&mut self) {
        for &wi in &self.blocked_touched {
            self.blocked[wi as usize] = 0;
        }
        self.blocked_touched.clear();
    }

    /// First-write-wins store of `l` at column `j`, unless blocked.
    #[inline]
    fn set(&mut self, j: u32, l: u32) {
        if self.blocked[(j / 64) as usize] >> (j % 64) & 1 == 1 {
            return;
        }
        let cell = &mut self.vals[j as usize];
        if *cell == NO_PATH {
            *cell = l;
            self.touched.push(j);
        }
    }

    /// Drains the touched cells in ascending column order.
    fn drain_into(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<u32>) {
        self.touched.sort_unstable();
        for &j in &self.touched {
            cols.push(j);
            vals.push(self.vals[j as usize]);
            self.vals[j as usize] = NO_PATH;
        }
        self.touched.clear();
    }
}

/// Serial CSR masked length product (shared by [`SparseEngine`] and, as
/// the per-job kernel, by [`ParSparseEngine`]).
fn csr_multiply_masked(
    a: &CsrLenMatrix,
    b: &CsrLenMatrix,
    mask: Option<&CsrLenMatrix>,
) -> CsrLenMatrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    if let Some(m) = mask {
        assert_eq!(a.n, m.n, "mask dimension mismatch");
    }
    let n = a.n;
    let mut acc = LenRowAccumulator::new(n);
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        let (acols, avals) = a.row(i);
        if acols.is_empty() {
            row_ptr.push(cols.len());
            continue;
        }
        if let Some(m) = mask {
            acc.seed_mask(m.row(i).0);
        }
        for (&k, &la) in acols.iter().zip(avals) {
            if la == 0 {
                continue;
            }
            let (bcols, bvals) = b.row(k as usize);
            for (&j, &lb) in bcols.iter().zip(bvals) {
                if lb == 0 {
                    continue;
                }
                acc.set(j, add_len(la, lb));
            }
        }
        if mask.is_some() {
            acc.clear_mask();
        }
        acc.drain_into(&mut cols, &mut vals);
        row_ptr.push(cols.len());
    }
    CsrLenMatrix {
        n,
        row_ptr,
        cols,
        vals,
    }
}

fn csr_merge_absent(acc: &mut CsrLenMatrix, add: &CsrLenMatrix) -> CsrLenMatrix {
    assert_eq!(acc.n, add.n, "dimension mismatch");
    let n = acc.n;
    let mut merged: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n);
    let mut fresh: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n);
    for i in 0..n {
        let (acols, avals) = acc.row(i);
        let (bcols, bvals) = add.row(i);
        let mut row: Vec<(u32, u32)> = Vec::with_capacity(acols.len() + bcols.len());
        let mut new_row: Vec<(u32, u32)> = Vec::new();
        let (mut x, mut y) = (0, 0);
        while x < acols.len() && y < bcols.len() {
            match acols[x].cmp(&bcols[y]) {
                std::cmp::Ordering::Less => {
                    row.push((acols[x], avals[x]));
                    x += 1;
                }
                std::cmp::Ordering::Greater => {
                    row.push((bcols[y], bvals[y]));
                    new_row.push((bcols[y], bvals[y]));
                    y += 1;
                }
                std::cmp::Ordering::Equal => {
                    // First write wins: the accumulator's value stays.
                    row.push((acols[x], avals[x]));
                    x += 1;
                    y += 1;
                }
            }
        }
        for p in x..acols.len() {
            row.push((acols[p], avals[p]));
        }
        for p in y..bcols.len() {
            row.push((bcols[p], bvals[p]));
            new_row.push((bcols[p], bvals[p]));
        }
        merged.push(row);
        fresh.push(new_row);
    }
    *acc = CsrLenMatrix::from_rows(merged);
    CsrLenMatrix::from_rows(fresh)
}

/// Shared `len_set_absent` for the CSR representation: filters to
/// genuinely-new cells (first occurrence wins within the batch), then
/// merges them in one pass.
fn csr_set_absent(a: &mut CsrLenMatrix, entries: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
    let mut seen = std::collections::BTreeSet::new();
    let fresh: Vec<(u32, u32, u32)> = entries
        .iter()
        .filter(|&&(i, j, _)| a.get(i, j).is_none() && seen.insert((i, j)))
        .copied()
        .collect();
    if !fresh.is_empty() {
        csr_merge_absent(a, &CsrLenMatrix::from_entries(a.n, &fresh));
    }
    fresh
}

impl LenEngine for SparseEngine {
    type LenMatrix = CsrLenMatrix;

    fn len_empty(&self, n: usize) -> CsrLenMatrix {
        CsrLenMatrix::empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> CsrLenMatrix {
        CsrLenMatrix::from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut CsrLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        csr_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &CsrLenMatrix,
        b: &CsrLenMatrix,
        mask: Option<&CsrLenMatrix>,
    ) -> CsrLenMatrix {
        csr_multiply_masked(a, b, mask)
    }
    fn len_merge_absent(&self, acc: &mut CsrLenMatrix, add: &CsrLenMatrix) -> CsrLenMatrix {
        csr_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut CsrLenMatrix, n: usize) {
        a.grow(n)
    }
}

impl LenEngine for ParSparseEngine {
    type LenMatrix = CsrLenMatrix;

    fn len_empty(&self, n: usize) -> CsrLenMatrix {
        CsrLenMatrix::empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> CsrLenMatrix {
        CsrLenMatrix::from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut CsrLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        csr_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &CsrLenMatrix,
        b: &CsrLenMatrix,
        mask: Option<&CsrLenMatrix>,
    ) -> CsrLenMatrix {
        csr_multiply_masked(a, b, mask)
    }
    fn len_multiply_masked_batch(&self, jobs: &[LenJob<'_, CsrLenMatrix>]) -> Vec<CsrLenMatrix> {
        // One serial kernel per job; no nested offload (see Device docs).
        self.device
            .par_map(jobs.to_vec(), |(a, b, m)| csr_multiply_masked(a, b, m))
    }
    fn len_merge_absent(&self, acc: &mut CsrLenMatrix, add: &CsrLenMatrix) -> CsrLenMatrix {
        csr_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut CsrLenMatrix, n: usize) {
        a.grow(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn dense(entries: &[(u32, u32, u32)], n: usize) -> DenseLenMatrix {
        DenseLenMatrix::from_entries(n, entries)
    }
    fn csr(entries: &[(u32, u32, u32)], n: usize) -> CsrLenMatrix {
        CsrLenMatrix::from_entries(n, entries)
    }

    #[test]
    fn zero_is_present_and_max_is_absent() {
        let d = dense(&[(0, 0, 0), (1, 2, 5)], 3);
        assert_eq!(d.get(0, 0), Some(0));
        assert_eq!(d.get(1, 2), Some(5));
        assert_eq!(d.get(2, 2), None);
        assert_eq!(d.nnz(), 2);
        let s = csr(&[(0, 0, 0), (1, 2, 5)], 3);
        assert_eq!(s.get(0, 0), Some(0));
        assert_eq!(s.get(1, 2), Some(5));
        assert_eq!(s.get(2, 2), None);
        assert_eq!(LenMat::entries(&d), LenMat::entries(&s));
    }

    #[test]
    fn from_entries_is_first_write_wins() {
        let d = dense(&[(1, 1, 3), (1, 1, 9)], 2);
        assert_eq!(d.get(1, 1), Some(3));
        let s = csr(&[(1, 1, 3), (1, 1, 9)], 2);
        assert_eq!(s.get(1, 1), Some(3));
    }

    fn check_engine<E: LenEngine>(e: &E) {
        // Path composition: (0,1,2) · (1,2,3) → (0,2,5).
        let a = e.len_from_entries(4, &[(0, 1, 2), (3, 3, 1)]);
        let b = e.len_from_entries(4, &[(1, 2, 3), (3, 3, 1)]);
        let c = e.len_multiply(&a, &b);
        assert_eq!(c.entries(), vec![(0, 2, 5), (3, 3, 2)]);

        // ε-operands (length 0) never compose.
        let eps = e.len_from_entries(4, &[(0, 0, 0), (1, 1, 0)]);
        assert_eq!(e.len_multiply(&eps, &b).nnz(), 0);
        assert_eq!(e.len_multiply(&a, &eps).nnz(), 0);

        // Masking suppresses known cells.
        let mask = e.len_from_entries(4, &[(0, 2, 7)]);
        let masked = e.len_multiply_masked(&a, &b, Some(&mask));
        assert_eq!(masked.entries(), vec![(3, 3, 2)]);

        // merge_absent: first write wins, fresh cells reported.
        let mut acc = e.len_from_entries(4, &[(0, 2, 7)]);
        let fresh = e.len_merge_absent(&mut acc, &c);
        assert_eq!(fresh.entries(), vec![(3, 3, 2)]);
        assert_eq!(acc.get(0, 2), Some(7), "existing length is never updated");
        assert_eq!(acc.get(3, 3), Some(2));
        let none = e.len_merge_absent(&mut acc, &c);
        assert_eq!(none.nnz(), 0, "second merge adds nothing");

        // set_absent mirrors merge_absent for explicit entries.
        let written = e.len_set_absent(&mut acc, &[(0, 2, 1), (2, 0, 4), (2, 0, 9)]);
        assert_eq!(written, vec![(2, 0, 4)]);
        assert_eq!(acc.get(0, 2), Some(7));
        assert_eq!(acc.get(2, 0), Some(4));

        // grow keeps cells and extends the universe.
        let mut g = e.len_from_entries(2, &[(0, 1, 1), (1, 1, 2)]);
        e.len_grow(&mut g, 5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.get(0, 1), Some(1));
        assert_eq!(g.get(4, 4), None);
        let grown_b = e.len_from_entries(5, &[(1, 4, 3)]);
        assert_eq!(
            e.len_multiply(&g, &grown_b).entries(),
            vec![(0, 4, 4), (1, 4, 5)]
        );

        // Batch == per-job results.
        let batch = e.len_multiply_masked_batch(&[(&a, &b, Some(&mask)), (&a, &b, None)]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].entries(), masked.entries());
        assert_eq!(batch[1].entries(), c.entries());
    }

    #[test]
    fn all_engines_behave_identically() {
        check_engine(&DenseEngine);
        check_engine(&SparseEngine);
        check_engine(&ParDenseEngine::new(Device::new(3)));
        check_engine(&ParSparseEngine::new(Device::new(2)));
    }

    #[test]
    fn dense_and_csr_products_agree_on_random_matrices() {
        let n = 60usize;
        let mut state = 0x5EED_0123u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let mut entries_a = Vec::new();
        let mut entries_b = Vec::new();
        let mut entries_m = Vec::new();
        for _ in 0..300 {
            entries_a.push((next() % n as u32, next() % n as u32, 1 + next() % 9));
            entries_b.push((next() % n as u32, next() % n as u32, 1 + next() % 9));
            entries_m.push((next() % n as u32, next() % n as u32, 1 + next() % 9));
        }
        let (da, db, dm) = (
            dense(&entries_a, n),
            dense(&entries_b, n),
            dense(&entries_m, n),
        );
        let (sa, sb, sm) = (csr(&entries_a, n), csr(&entries_b, n), csr(&entries_m, n));
        // Both kernels scan k in ascending order (dense scans the full
        // row, CSR scans the stored columns), so even the chosen lengths
        // coincide — assert full entry equality, not just pair sets.
        let dp = dense_multiply_masked(&da, &db, Some(&dm));
        let sp = csr_multiply_masked(&sa, &sb, Some(&sm));
        assert_eq!(LenMat::entries(&dp), LenMat::entries(&sp));
        let dp = dense_multiply_masked(&da, &db, None);
        let sp = csr_multiply_masked(&sa, &sb, None);
        assert_eq!(LenMat::entries(&dp), LenMat::entries(&sp));
    }

    #[test]
    fn lengths_saturate_instead_of_wrapping_into_the_sentinel() {
        let a = dense(&[(0, 1, MAX_LEN)], 2);
        let b = dense(&[(1, 0, MAX_LEN)], 2);
        let c = dense_multiply_masked(&a, &b, None);
        assert_eq!(c.get(0, 0), Some(MAX_LEN), "saturated, still present");
    }

    #[test]
    fn grow_is_a_row_append_for_csr() {
        let mut m = csr(&[(0, 1, 2), (2, 0, 1)], 3);
        m.grow(6);
        assert_eq!(m.n(), 6);
        assert_eq!(m.get(2, 0), Some(1));
        assert_eq!(m.get(5, 5), None);
        assert_eq!(m.nnz(), 2);
    }
}
