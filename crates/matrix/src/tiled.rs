//! Block-tiled Boolean matrices: fixed-size bitset tiles in a
//! CSR-of-tiles layout.
//!
//! The flat representations cap out in two different ways on large
//! graphs: [`crate::DenseBitMatrix`] spends `O(n²/64)` words per matrix
//! regardless of structure (a 100k-node graph needs ~1.3 GB *per
//! nonterminal*), while [`crate::CsrMatrix`] pays a per-entry merge for
//! every set bit it touches. GPU/SIMD CFPQ follow-ups (the arXiv
//! extension of the paper, and the Kronecker line of work) sidestep both
//! with a *blocked* matrix: only non-empty fixed-size tiles are stored,
//! and the product is a sum of small dense bitwise kernels that stay
//! cache-resident.
//!
//! [`TiledBitMatrix`] is that representation on the CPU device:
//!
//! * the `n × n` bit space is cut into `TILE × TILE` (64 × 64) tiles —
//!   one tile is 64 `u64` words = 512 bytes, comfortably L1-resident;
//! * per tile-row, the non-empty tiles are stored CSR-style: a sorted
//!   tile-column index array plus the tile payloads (the same
//!   `row_ptr`/`cols` idiom as [`crate::CsrMatrix`], one level up);
//! * `C_{ij} |= A_{ik} × B_{kj}` runs the classic dense bitset kernel
//!   per tile pair — for each of the 64 tile rows, OR `B`'s row `k` word
//!   into the accumulator for every set bit `k` — and tile pairs whose
//!   counterpart tile-row in `B` is empty are skipped without touching
//!   any bit (counted in [`crate::engine::KernelCounters::tiles_skipped`]);
//! * tile-row blocks of the product are dispatched in parallel across
//!   the existing [`Device`] pool, exactly like the flat kernels.
//!
//! The canonical-form invariant — **no stored all-zero tile, tile
//! columns strictly ascending per tile-row** — is maintained by every
//! constructor and operation, so derived `PartialEq` is semantic
//! equality.

use crate::device::Device;
use crate::engine::{BoolEngine, BoolMat, KernelCounters, MaskedJob, ParSparseEngine};
use crate::length::{CsrLenMatrix, LenEngine, LenJob};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tile edge length in bits. One tile is `TILE` `u64` words.
pub const TILE: usize = 64;

type TileWords = [u64; TILE];

/// One worker's output block: per-tile-row end offsets (relative to the
/// block), tile columns, tile payloads, and the skipped-kernel count.
type TileBlock = (Vec<usize>, Vec<u32>, Vec<TileWords>, u64);

const EMPTY_TILE: TileWords = [0u64; TILE];

/// An `n × n` Boolean matrix stored as non-empty 64×64 bitset tiles in
/// a CSR-of-tiles layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TiledBitMatrix {
    n: usize,
    /// Tiles per side (`ceil(n / TILE)`).
    tn: usize,
    /// `row_ptr[ti]..row_ptr[ti + 1]` indexes the stored tiles of
    /// tile-row `ti` in `tile_cols` / `tiles`.
    row_ptr: Vec<usize>,
    /// Tile-column index of each stored tile, ascending per tile-row.
    tile_cols: Vec<u32>,
    /// Tile payloads, aligned with `tile_cols`. `tiles[t][r]` holds bit
    /// columns `tile_cols[t]*64 .. +64` of global row
    /// `tile_row(t)*64 + r`.
    tiles: Vec<TileWords>,
}

#[inline]
fn tile_count(n: usize) -> usize {
    n.div_ceil(TILE)
}

#[inline]
fn tile_is_zero(t: &TileWords) -> bool {
    t.iter().all(|&w| w == 0)
}

impl TiledBitMatrix {
    /// Creates the zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        let tn = tile_count(n);
        Self {
            n,
            tn,
            row_ptr: vec![0; tn + 1],
            tile_cols: Vec::new(),
            tiles: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col)` pairs. Row-major-sorted input —
    /// what `pairs()` emits on every representation — takes an `O(nnz)`
    /// streaming path; unsorted input falls back to the sorting insert.
    pub fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        if pairs.windows(2).all(|w| w[0] <= w[1]) {
            Self::from_sorted_pairs(n, pairs)
        } else {
            let mut m = Self::zeros(n);
            m.insert_pairs(pairs);
            m
        }
    }

    /// The `O(nnz)` builder for row-major-sorted pairs: each tile-row is
    /// a contiguous run of the input, so tiles are filled first-touch via
    /// a `tile_col → slot` scratch (no global sort) and only the
    /// per-tile-row column lists are sorted at the end of their run.
    fn from_sorted_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        let tn = tile_count(n);
        let mut row_ptr = Vec::with_capacity(tn + 1);
        let mut tile_cols: Vec<u32> = Vec::new();
        let mut tiles: Vec<TileWords> = Vec::new();
        row_ptr.push(0);
        let mut slot_of: Vec<u32> = vec![u32::MAX; tn];
        let mut k = 0usize;
        for ti in 0..tn {
            let row_start = tiles.len();
            let row_end = ((ti + 1) * TILE) as u32;
            while k < pairs.len() && pairs[k].0 < row_end {
                let (i, j) = pairs[k];
                debug_assert!((i as usize) < n && (j as usize) < n);
                let tj = j as usize / TILE;
                let mut slot = slot_of[tj];
                if slot == u32::MAX {
                    slot = tiles.len() as u32;
                    slot_of[tj] = slot;
                    tile_cols.push(tj as u32);
                    tiles.push(EMPTY_TILE);
                }
                tiles[slot as usize][i as usize % TILE] |= 1u64 << (j as usize % TILE);
                k += 1;
            }
            // Restore the canonical ascending tile-col order for this
            // tile-row (first-touch order follows the rows, not the
            // columns) and release the scratch slots.
            let m = tiles.len() - row_start;
            if m > 1 {
                let mut perm: Vec<u32> = (0..m as u32).collect();
                perm.sort_unstable_by_key(|&x| tile_cols[row_start + x as usize]);
                let cols: Vec<u32> = perm
                    .iter()
                    .map(|&x| tile_cols[row_start + x as usize])
                    .collect();
                let tls: Vec<TileWords> = perm
                    .iter()
                    .map(|&x| tiles[row_start + x as usize])
                    .collect();
                tile_cols[row_start..].copy_from_slice(&cols);
                tiles[row_start..].copy_from_slice(&tls);
            }
            for &tj in &tile_cols[row_start..] {
                slot_of[tj as usize] = u32::MAX;
            }
            row_ptr.push(tiles.len());
        }
        debug_assert_eq!(k, pairs.len(), "pairs out of range");
        Self {
            n,
            tn,
            row_ptr,
            tile_cols,
            tiles,
        }
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tiles per side.
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.tn
    }

    /// Number of stored (non-empty) tiles.
    #[inline]
    pub fn stored_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Reads bit `(i, j)`.
    pub fn get(&self, i: u32, j: u32) -> bool {
        debug_assert!((i as usize) < self.n && (j as usize) < self.n);
        let (ti, tj) = (i as usize / TILE, (j / TILE as u32));
        let row = &self.tile_cols[self.row_ptr[ti]..self.row_ptr[ti + 1]];
        match row.binary_search(&tj) {
            Ok(pos) => {
                let t = &self.tiles[self.row_ptr[ti] + pos];
                t[i as usize % TILE] >> (j as usize % TILE) & 1 == 1
            }
            Err(_) => false,
        }
    }

    /// Number of set bits.
    pub fn nnz(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| t.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum()
    }

    /// All set `(row, col)` pairs in row-major order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for ti in 0..self.tn {
            let range = self.row_ptr[ti]..self.row_ptr[ti + 1];
            for r in 0..TILE {
                let i = (ti * TILE + r) as u32;
                for t in range.clone() {
                    let base = self.tile_cols[t] * TILE as u32;
                    let mut word = self.tiles[t][r];
                    while word != 0 {
                        out.push((i, base + word.trailing_zeros()));
                        word &= word - 1;
                    }
                }
            }
        }
        out
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Sets every bit of `pairs` in place; returns `true` if any bit was
    /// newly set. The point-update path behind `BoolEngine::union_pairs`.
    pub fn insert_pairs(&mut self, pairs: &[(u32, u32)]) -> bool {
        if pairs.is_empty() {
            return false;
        }
        // Group the updates by tile, then merge tile-row by tile-row so
        // untouched tile-rows are copied contiguously.
        let mut keyed: Vec<(u32, u32, u32, u32)> = pairs
            .iter()
            .map(|&(i, j)| {
                debug_assert!((i as usize) < self.n && (j as usize) < self.n);
                (
                    i / TILE as u32,
                    j / TILE as u32,
                    i % TILE as u32,
                    j % TILE as u32,
                )
            })
            .collect();
        keyed.sort_unstable();
        let mut changed = false;
        let mut row_ptr = Vec::with_capacity(self.tn + 1);
        let mut tile_cols = Vec::with_capacity(self.tile_cols.len());
        let mut tiles = Vec::with_capacity(self.tiles.len());
        row_ptr.push(0);
        let mut k = 0usize;
        for ti in 0..self.tn as u32 {
            let old = self.row_ptr[ti as usize]..self.row_ptr[ti as usize + 1];
            if k >= keyed.len() || keyed[k].0 != ti {
                // Untouched tile-row: copy through.
                tile_cols.extend_from_slice(&self.tile_cols[old.clone()]);
                tiles.extend_from_slice(&self.tiles[old]);
                row_ptr.push(tile_cols.len());
                continue;
            }
            let mut o = old.start;
            while k < keyed.len() && keyed[k].0 == ti {
                let tj = keyed[k].1;
                while o < old.end && self.tile_cols[o] < tj {
                    tile_cols.push(self.tile_cols[o]);
                    tiles.push(self.tiles[o]);
                    o += 1;
                }
                let mut tile = if o < old.end && self.tile_cols[o] == tj {
                    let t = self.tiles[o];
                    o += 1;
                    t
                } else {
                    EMPTY_TILE
                };
                while k < keyed.len() && keyed[k].0 == ti && keyed[k].1 == tj {
                    let (_, _, r, c) = keyed[k];
                    let bit = 1u64 << c;
                    changed |= tile[r as usize] & bit == 0;
                    tile[r as usize] |= bit;
                    k += 1;
                }
                tile_cols.push(tj);
                tiles.push(tile);
            }
            while o < old.end {
                tile_cols.push(self.tile_cols[o]);
                tiles.push(self.tiles[o]);
                o += 1;
            }
            row_ptr.push(tile_cols.len());
        }
        self.row_ptr = row_ptr;
        self.tile_cols = tile_cols;
        self.tiles = tiles;
        changed
    }

    /// `self |= other`; returns `true` if any bit changed.
    pub fn union_in_place(&mut self, other: &TiledBitMatrix) -> bool {
        assert_eq!(self.n, other.n, "dimension mismatch");
        if other.tiles.is_empty() {
            return false;
        }
        let mut changed = 0u64;
        let mut row_ptr = Vec::with_capacity(self.tn + 1);
        let mut tile_cols = Vec::with_capacity(self.tile_cols.len() + other.tile_cols.len());
        let mut tiles = Vec::with_capacity(self.tiles.len() + other.tiles.len());
        row_ptr.push(0);
        for ti in 0..self.tn {
            let (mut a, a_end) = (self.row_ptr[ti], self.row_ptr[ti + 1]);
            let (mut b, b_end) = (other.row_ptr[ti], other.row_ptr[ti + 1]);
            while a < a_end || b < b_end {
                let ca = self.tile_cols.get(a).copied().filter(|_| a < a_end);
                let cb = other.tile_cols.get(b).copied().filter(|_| b < b_end);
                match (ca, cb) {
                    (Some(x), Some(y)) if x == y => {
                        let mut t = self.tiles[a];
                        for (tw, &ow) in t.iter_mut().zip(other.tiles[b].iter()) {
                            changed |= ow & !*tw;
                            *tw |= ow;
                        }
                        tile_cols.push(x);
                        tiles.push(t);
                        a += 1;
                        b += 1;
                    }
                    (Some(x), Some(y)) if x < y => {
                        tile_cols.push(x);
                        tiles.push(self.tiles[a]);
                        a += 1;
                    }
                    (Some(_), Some(y)) | (None, Some(y)) => {
                        changed |= 1; // a whole new tile; invariant: non-zero
                        tile_cols.push(y);
                        tiles.push(other.tiles[b]);
                        b += 1;
                    }
                    (Some(x), None) => {
                        tile_cols.push(x);
                        tiles.push(self.tiles[a]);
                        a += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            row_ptr.push(tile_cols.len());
        }
        self.row_ptr = row_ptr;
        self.tile_cols = tile_cols;
        self.tiles = tiles;
        changed != 0
    }

    /// `self \ other` — bits set in `self` but not `other`.
    pub fn difference(&self, other: &TiledBitMatrix) -> TiledBitMatrix {
        self.zip_set_op(other, |a, b| a & !b)
    }

    /// `self ∩ other` — bitwise AND.
    pub fn intersect(&self, other: &TiledBitMatrix) -> TiledBitMatrix {
        self.zip_set_op(other, |a, b| a & b)
    }

    /// Entrywise combine against `other`, treating tiles absent on either
    /// side as zero. `op(a, 0)` must equal either `a` or `0` (which is
    /// true for AND-NOT and AND), so only aligned tile walks are needed.
    fn zip_set_op(&self, other: &TiledBitMatrix, op: impl Fn(u64, u64) -> u64) -> TiledBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let keep_unmatched = op(u64::MAX, 0) == u64::MAX;
        let mut out = TiledBitMatrix::zeros(self.n);
        for ti in 0..self.tn {
            let (mut a, a_end) = (self.row_ptr[ti], self.row_ptr[ti + 1]);
            let (b_start, b_end) = (other.row_ptr[ti], other.row_ptr[ti + 1]);
            let mut b = b_start;
            while a < a_end {
                let ca = self.tile_cols[a];
                while b < b_end && other.tile_cols[b] < ca {
                    b += 1;
                }
                if b < b_end && other.tile_cols[b] == ca {
                    let mut t = EMPTY_TILE;
                    let mut any = 0u64;
                    for ((tw, &aw), &bw) in t
                        .iter_mut()
                        .zip(self.tiles[a].iter())
                        .zip(other.tiles[b].iter())
                    {
                        *tw = op(aw, bw);
                        any |= *tw;
                    }
                    if any != 0 {
                        out.tile_cols.push(ca);
                        out.tiles.push(t);
                    }
                } else if keep_unmatched {
                    out.tile_cols.push(ca);
                    out.tiles.push(self.tiles[a]);
                }
                a += 1;
            }
            out.row_ptr[ti + 1] = out.tile_cols.len();
        }
        out
    }

    /// Grows the matrix to `n × n`, keeping existing bits. `n` must not
    /// shrink the matrix. Tile payloads are untouched — growth only adds
    /// empty tile-rows (and widens the valid bit range of edge tiles,
    /// whose out-of-range bits were zero by invariant).
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "Boolean matrices only grow");
        if n == self.n {
            return;
        }
        let tn = tile_count(n);
        let stored = *self.row_ptr.last().expect("row_ptr non-empty");
        self.row_ptr.resize(tn + 1, stored);
        self.n = n;
        self.tn = tn;
    }

    /// Serial Boolean product `self × other`.
    pub fn multiply(&self, other: &TiledBitMatrix) -> TiledBitMatrix {
        self.multiply_masked_opt_on(other, None, None).0
    }

    /// Serial masked product `(self × other) \ mask` — see
    /// [`crate::engine::BoolEngine::multiply_masked`] for the contract.
    pub fn multiply_masked(&self, other: &TiledBitMatrix, mask: &TiledBitMatrix) -> TiledBitMatrix {
        self.multiply_masked_opt_on(other, Some(mask), None).0
    }

    /// Product with tile-row blocks computed in parallel on the `device`
    /// pool. Also returns the number of tile-granular kernel launches
    /// avoided (empty counterpart tile-rows in `other`, plus accumulated
    /// output tiles that masking or cancellation left empty).
    pub fn multiply_masked_opt_on(
        &self,
        other: &TiledBitMatrix,
        mask: Option<&TiledBitMatrix>,
        device: Option<&Device>,
    ) -> (TiledBitMatrix, u64) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        if let Some(m) = mask {
            assert_eq!(self.n, m.n, "mask dimension mismatch");
        }
        let mut out = TiledBitMatrix::zeros(self.n);
        let offload = device.is_some_and(|d| d.n_workers() > 1 && self.tn > 1);
        let blocks: Vec<TileBlock> = if offload {
            let device = device.expect("offload implies device");
            device.par_map_ranges(self.tn, |range| self.multiply_block(other, mask, range))
        } else {
            vec![self.multiply_block(other, mask, 0..self.tn)]
        };
        let mut skipped = 0u64;
        let mut ti = 0usize;
        for (row_ends, cols, tiles, block_skipped) in blocks {
            let base = out.tile_cols.len();
            for end in row_ends {
                ti += 1;
                out.row_ptr[ti] = base + end;
            }
            out.tile_cols.extend_from_slice(&cols);
            out.tiles.extend_from_slice(&tiles);
            skipped += block_skipped;
        }
        debug_assert_eq!(ti, self.tn, "every tile-row stitched");
        (out, skipped)
    }

    /// Computes tile-rows `rows` of `(self × other) \ mask?`. Returns the
    /// per-tile-row end offsets (relative to the block), the tile columns
    /// and payloads, and the skipped-kernel count.
    fn multiply_block(
        &self,
        other: &TiledBitMatrix,
        mask: Option<&TiledBitMatrix>,
        rows: Range<usize>,
    ) -> TileBlock {
        let mut row_ends = Vec::with_capacity(rows.len());
        let mut cols: Vec<u32> = Vec::new();
        let mut tiles: Vec<TileWords> = Vec::new();
        let mut skipped = 0u64;
        with_tile_accumulator(self.tn, |acc| {
            for ti in rows {
                acc.begin_row();
                for t in self.row_ptr[ti]..self.row_ptr[ti + 1] {
                    let tk = self.tile_cols[t] as usize;
                    let b_range = other.row_ptr[tk]..other.row_ptr[tk + 1];
                    if b_range.is_empty() {
                        // The whole family of products A_{i,k} × B_{k,*}
                        // vanishes: B's tile-row k stores nothing.
                        skipped += 1;
                        continue;
                    }
                    let a_tile = &self.tiles[t];
                    for bt in b_range {
                        let tj = other.tile_cols[bt];
                        tile_multiply_into(a_tile, &other.tiles[bt], acc.tile(tj));
                    }
                }
                // Drain this tile-row's accumulated tiles in ascending
                // tile-column order (canonical form), masking on the way.
                acc.touched.sort_unstable();
                let mask_row = mask.map(|m| (m, m.row_ptr[ti]..m.row_ptr[ti + 1]));
                for &tj in &acc.touched {
                    let tile = &mut acc.tiles[tj as usize];
                    if let Some((m, ref mrange)) = mask_row {
                        if let Ok(pos) = m.tile_cols[mrange.clone()].binary_search(&tj) {
                            let mtile = &m.tiles[mrange.start + pos];
                            for (tw, &mw) in tile.iter_mut().zip(mtile.iter()) {
                                *tw &= !mw;
                            }
                        }
                    }
                    if tile_is_zero(tile) {
                        // Accumulated but fully masked (or cancelled):
                        // nothing reaches the output.
                        skipped += 1;
                        continue;
                    }
                    cols.push(tj);
                    tiles.push(*tile);
                }
                row_ends.push(cols.len());
            }
        });
        (row_ends, cols, tiles, skipped)
    }
}

/// The dense 64×64 kernel: `c |= a × b` over Boolean semiring. For each
/// tile row `r`, every set bit `k` of `a[r]` ORs `b`'s row `k` into
/// `c[r]` — the flat dense kernel at cache-resident scale.
#[inline]
fn tile_multiply_into(a: &TileWords, b: &TileWords, c: &mut TileWords) {
    for r in 0..TILE {
        let mut aw = a[r];
        if aw == 0 {
            continue;
        }
        let mut cw = c[r];
        while aw != 0 {
            cw |= b[aw.trailing_zeros() as usize];
            aw &= aw - 1;
        }
        c[r] = cw;
    }
}

/// Per-thread accumulator for one tile-row of a product: a lazily-zeroed
/// tile per tile-column plus the touched-column list. Reused across
/// products via a thread-local (the device workers are persistent), so
/// no per-product `O(tn)` allocation or zeroing happens — only tiles
/// actually touched are cleared, at first touch.
struct TileAccumulator {
    tiles: Vec<TileWords>,
    /// `stamp[tj] == cur` iff `tiles[tj]` belongs to the current row.
    stamp: Vec<u64>,
    cur: u64,
    touched: Vec<u32>,
}

impl TileAccumulator {
    fn new() -> Self {
        Self {
            tiles: Vec::new(),
            stamp: Vec::new(),
            cur: 0,
            touched: Vec::new(),
        }
    }

    fn ensure(&mut self, tn: usize) {
        if self.tiles.len() < tn {
            self.tiles.resize(tn, EMPTY_TILE);
            self.stamp.resize(tn, 0);
        }
    }

    fn begin_row(&mut self) {
        self.cur += 1;
        self.touched.clear();
    }

    #[inline]
    fn tile(&mut self, tj: u32) -> &mut TileWords {
        let idx = tj as usize;
        if self.stamp[idx] != self.cur {
            self.stamp[idx] = self.cur;
            self.tiles[idx] = EMPTY_TILE;
            self.touched.push(tj);
        }
        &mut self.tiles[idx]
    }
}

thread_local! {
    static TILE_ACC: RefCell<TileAccumulator> = RefCell::new(TileAccumulator::new());
}

fn with_tile_accumulator<R>(tn: usize, f: impl FnOnce(&mut TileAccumulator) -> R) -> R {
    TILE_ACC.with(|cell| {
        let mut acc = cell.borrow_mut();
        acc.ensure(tn);
        f(&mut acc)
    })
}

impl BoolMat for TiledBitMatrix {
    fn n(&self) -> usize {
        TiledBitMatrix::n(self)
    }
    fn get(&self, i: u32, j: u32) -> bool {
        TiledBitMatrix::get(self, i, j)
    }
    fn nnz(&self) -> usize {
        TiledBitMatrix::nnz(self)
    }
    fn pairs(&self) -> Vec<(u32, u32)> {
        TiledBitMatrix::pairs(self)
    }
}

/// Device-parallel block-tiled backend. Tile-row blocks of every product
/// are dispatched across the [`Device`] pool; batch entry points run one
/// serial tiled kernel per job on the pool instead (no nested offload,
/// per the `Device` contract). Clones share the device handle *and* the
/// skip counter, so [`BoolEngine::kernel_counters`] reads one stream
/// across snapshots and worker threads.
#[derive(Clone, Debug)]
pub struct TiledEngine {
    /// The execution device.
    pub device: Device,
    tiles_skipped: Arc<AtomicU64>,
}

impl TiledEngine {
    /// Creates the backend with the given device.
    pub fn new(device: Device) -> Self {
        Self {
            device,
            tiles_skipped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A serial tiled backend (inline device, no extra threads).
    pub fn serial() -> Self {
        Self::new(Device::new(1))
    }

    pub(crate) fn note_skipped(&self, skipped: u64) {
        if skipped > 0 {
            self.tiles_skipped.fetch_add(skipped, Ordering::Relaxed);
        }
    }

    /// The §5 length kernels run on the CSR length representation (tile
    /// payloads are bitsets; path lengths need `u32` cells), sharing the
    /// tiled engine's device.
    fn len_engine(&self) -> ParSparseEngine {
        ParSparseEngine::new(self.device.clone())
    }
}

impl Default for TiledEngine {
    fn default() -> Self {
        Self::serial()
    }
}

/// Kernel-span wrapper for tiled products: adds the per-product
/// `tiles_skipped` count on top of the standard repr/op/nnz tags (see
/// the Recorder contract on [`BoolEngine`]).
fn tiled_kernel(op: &'static str, f: impl FnOnce() -> (TiledBitMatrix, u64)) -> TiledBitMatrix {
    let mut sp = cfpq_obs::span("kernel");
    let (c, skipped) = f();
    if sp.is_recording() {
        sp.attr_str("repr", "tiled");
        sp.attr_str("op", op);
        sp.attr_u64("nnz", c.nnz() as u64);
        sp.attr_u64("tiles_skipped", skipped);
    }
    c
}

impl BoolEngine for TiledEngine {
    type Matrix = TiledBitMatrix;

    fn name(&self) -> &'static str {
        "tiled"
    }
    fn zeros(&self, n: usize) -> TiledBitMatrix {
        TiledBitMatrix::zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> TiledBitMatrix {
        TiledBitMatrix::from_pairs(n, pairs)
    }
    fn multiply(&self, a: &TiledBitMatrix, b: &TiledBitMatrix) -> TiledBitMatrix {
        tiled_kernel("mul", || {
            let (c, skipped) = a.multiply_masked_opt_on(b, None, Some(&self.device));
            self.note_skipped(skipped);
            (c, skipped)
        })
    }
    fn union_in_place(&self, a: &mut TiledBitMatrix, b: &TiledBitMatrix) -> bool {
        a.union_in_place(b)
    }
    fn union_pairs(&self, a: &mut TiledBitMatrix, pairs: &[(u32, u32)]) -> bool {
        a.insert_pairs(pairs)
    }
    fn grow(&self, a: &mut TiledBitMatrix, n: usize) {
        a.grow(n)
    }
    fn difference(&self, a: &TiledBitMatrix, b: &TiledBitMatrix) -> TiledBitMatrix {
        a.difference(b)
    }
    fn intersect(&self, a: &TiledBitMatrix, b: &TiledBitMatrix) -> TiledBitMatrix {
        a.intersect(b)
    }
    fn multiply_batch(&self, jobs: &[(&TiledBitMatrix, &TiledBitMatrix)]) -> Vec<TiledBitMatrix> {
        // One serial tiled kernel per job; no nested offload.
        self.device.par_map(jobs.to_vec(), |(a, b)| {
            tiled_kernel("mul", || {
                let (c, skipped) = a.multiply_masked_opt_on(b, None, None);
                self.note_skipped(skipped);
                (c, skipped)
            })
        })
    }
    fn multiply_masked(
        &self,
        a: &TiledBitMatrix,
        b: &TiledBitMatrix,
        mask: &TiledBitMatrix,
    ) -> TiledBitMatrix {
        tiled_kernel("masked", || {
            let (c, skipped) = a.multiply_masked_opt_on(b, Some(mask), Some(&self.device));
            self.note_skipped(skipped);
            (c, skipped)
        })
    }
    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, TiledBitMatrix>]) -> Vec<TiledBitMatrix> {
        // One serial tiled kernel per job; no nested offload.
        self.device.par_map(jobs.to_vec(), |(a, b, m)| {
            tiled_kernel(if m.is_some() { "masked" } else { "mul" }, || {
                let (c, skipped) = a.multiply_masked_opt_on(b, m, None);
                self.note_skipped(skipped);
                (c, skipped)
            })
        })
    }
    fn kernel_counters(&self) -> KernelCounters {
        KernelCounters {
            tiles_skipped: self.tiles_skipped.load(Ordering::Relaxed),
            repr_switches: 0,
        }
    }
}

impl LenEngine for TiledEngine {
    type LenMatrix = CsrLenMatrix;

    fn len_empty(&self, n: usize) -> CsrLenMatrix {
        self.len_engine().len_empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> CsrLenMatrix {
        self.len_engine().len_from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut CsrLenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        self.len_engine().len_set_absent(a, entries)
    }
    fn len_multiply_masked(
        &self,
        a: &CsrLenMatrix,
        b: &CsrLenMatrix,
        mask: Option<&CsrLenMatrix>,
    ) -> CsrLenMatrix {
        self.len_engine().len_multiply_masked(a, b, mask)
    }
    fn len_multiply_masked_batch(&self, jobs: &[LenJob<'_, CsrLenMatrix>]) -> Vec<CsrLenMatrix> {
        self.len_engine().len_multiply_masked_batch(jobs)
    }
    fn len_merge_absent(&self, acc: &mut CsrLenMatrix, add: &CsrLenMatrix) -> CsrLenMatrix {
        self.len_engine().len_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut CsrLenMatrix, n: usize) {
        self.len_engine().len_grow(a, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..count)
            .map(|_| (next() % n as u32, next() % n as u32))
            .collect()
    }

    #[test]
    fn set_get_roundtrip_across_tile_boundaries() {
        let m = TiledBitMatrix::from_pairs(130, &[(0, 0), (63, 64), (64, 63), (129, 129)]);
        assert!(m.get(0, 0) && m.get(63, 64) && m.get(64, 63) && m.get(129, 129));
        assert!(!m.get(0, 1) && !m.get(128, 129));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.pairs(), vec![(0, 0), (63, 64), (64, 63), (129, 129)]);
    }

    #[test]
    fn canonical_form_stores_no_empty_tiles() {
        let a = TiledBitMatrix::from_pairs(200, &[(0, 0), (70, 70)]);
        assert_eq!(a.stored_tiles(), 2);
        let d = a.difference(&a);
        assert!(d.is_zero());
        assert_eq!(d.stored_tiles(), 0);
        // Two semantically equal matrices built differently are ==.
        let mut b = TiledBitMatrix::zeros(200);
        b.insert_pairs(&[(70, 70)]);
        b.insert_pairs(&[(0, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_fast_path_builds_the_same_matrix() {
        // Row-major-sorted input (what pairs() emits) takes the O(nnz)
        // streaming builder; it must produce the exact canonical form
        // the sorting fallback does, including multi-tile rows whose
        // tiles are first-touched out of column order.
        let n = 300usize;
        let unsorted = pseudo_pairs(n, 2000, 0xFA57);
        let reference = TiledBitMatrix::from_pairs(n, &unsorted);
        let sorted = reference.pairs();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let rebuilt = TiledBitMatrix::from_pairs(n, &sorted);
        assert_eq!(rebuilt, reference);
        assert_eq!(rebuilt.row_ptr, reference.row_ptr);
        assert_eq!(rebuilt.tile_cols, reference.tile_cols);
    }

    #[test]
    fn product_matches_dense_reference() {
        let n = 157usize; // deliberately not a multiple of 64
        let pa = pseudo_pairs(n, 600, 0xA11CE);
        let pb = pseudo_pairs(n, 600, 0xB0B);
        let a = TiledBitMatrix::from_pairs(n, &pa);
        let b = TiledBitMatrix::from_pairs(n, &pb);
        let da = crate::DenseBitMatrix::from_pairs(n, &pa);
        let db = crate::DenseBitMatrix::from_pairs(n, &pb);
        assert_eq!(a.multiply(&b).pairs(), da.multiply(&db).pairs());
    }

    #[test]
    fn masked_product_equals_product_minus_mask() {
        let n = 157usize;
        let a = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 500, 1));
        let b = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 500, 2));
        let mask = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 900, 3));
        let expect = a.multiply(&b).difference(&mask);
        let got = a.multiply_masked(&b, &mask);
        assert_eq!(got, expect);
        assert!(got.intersect(&mask).is_zero());
    }

    #[test]
    fn parallel_product_equals_serial() {
        let n = 300usize;
        let a = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 2000, 7));
        let b = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 2000, 8));
        let mask = TiledBitMatrix::from_pairs(n, &pseudo_pairs(n, 2000, 9));
        let (serial, _) = a.multiply_masked_opt_on(&b, Some(&mask), None);
        for workers in [1usize, 2, 4] {
            let d = Device::new(workers);
            let (par, _) = a.multiply_masked_opt_on(&b, Some(&mask), Some(&d));
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn union_and_insert_detect_change() {
        let mut a = TiledBitMatrix::from_pairs(100, &[(0, 1)]);
        let b = TiledBitMatrix::from_pairs(100, &[(0, 1), (65, 70)]);
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b), "second union is a no-op");
        assert_eq!(a.nnz(), 2);
        assert!(a.insert_pairs(&[(99, 99)]));
        assert!(!a.insert_pairs(&[(99, 99), (0, 1)]));
        assert!(!a.insert_pairs(&[]));
        assert_eq!(a.pairs(), vec![(0, 1), (65, 70), (99, 99)]);
    }

    #[test]
    fn grow_keeps_bits_and_accepts_new_ids() {
        let mut m = TiledBitMatrix::from_pairs(70, &[(0, 69), (69, 0)]);
        m.grow(200);
        assert_eq!(m.n(), 200);
        assert!(m.get(0, 69) && m.get(69, 0));
        assert!(m.insert_pairs(&[(199, 199)]));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn empty_tile_rows_are_skipped_and_counted() {
        // a's only tile sits at tile (0, 2); b's tile-row 2 is empty, so
        // the whole product family is skipped without touching a bit.
        let a = TiledBitMatrix::from_pairs(300, &[(0, 140)]);
        let b = TiledBitMatrix::from_pairs(300, &[(0, 1)]);
        let (c, skipped) = a.multiply_masked_opt_on(&b, None, None);
        assert!(c.is_zero());
        assert_eq!(skipped, 1);
        // A fully-masked output tile also counts as avoided work.
        let full_mask = {
            let mut pairs = Vec::new();
            for i in 0..64u32 {
                for j in 0..64u32 {
                    pairs.push((i, j));
                }
            }
            TiledBitMatrix::from_pairs(300, &pairs)
        };
        let x = TiledBitMatrix::from_pairs(300, &[(0, 1)]);
        let y = TiledBitMatrix::from_pairs(300, &[(1, 2)]);
        let (c, skipped) = x.multiply_masked_opt_on(&y, Some(&full_mask), None);
        assert!(c.is_zero());
        assert_eq!(skipped, 1);
    }

    #[test]
    fn engine_counters_accumulate_across_clones() {
        let e = TiledEngine::serial();
        let twin = e.clone();
        let a = e.from_pairs(300, &[(0, 140)]);
        let b = e.from_pairs(300, &[(0, 1)]);
        e.multiply(&a, &b);
        assert_eq!(twin.kernel_counters().tiles_skipped, 1);
        assert_eq!(twin.kernel_counters().repr_switches, 0);
    }

    #[test]
    fn zero_sized_matrix() {
        let m = TiledBitMatrix::zeros(0);
        assert!(m.multiply(&m).is_zero());
        assert_eq!(m.n(), 0);
        assert!(m.pairs().is_empty());
    }
}
