//! Dense Boolean matrices: row-major bitsets over `u64` words.
//!
//! This is the representation the paper's dGPU implementation uses
//! ("row-major order for general matrix representation"). Multiplication
//! is the classic bitset kernel: for every set bit `(i, k)` of `A`, OR row
//! `k` of `B` into row `i` of `C` — `O(n²·n/64)` word operations.

use crate::device::Device;

/// A dense `n × n` Boolean matrix stored as row-major bitset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseBitMatrix {
    n: usize,
    /// Words per row (`ceil(n / 64)`).
    wpr: usize,
    bits: Vec<u64>,
}

impl DenseBitMatrix {
    /// Creates the zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        let wpr = n.div_ceil(64).max(1);
        Self {
            n,
            wpr,
            bits: vec![0; n * wpr],
        }
    }

    /// Creates the identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n as u32 {
            m.set(i, i);
        }
        m
    }

    /// Builds a matrix from `(row, col)` pairs.
    pub fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let mut m = Self::zeros(n);
        for &(i, j) in pairs {
            m.set(i, j);
        }
        m
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Sets bit `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: u32, j: u32) {
        debug_assert!((i as usize) < self.n && (j as usize) < self.n);
        self.bits[i as usize * self.wpr + j as usize / 64] |= 1u64 << (j % 64);
    }

    /// Reads bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> bool {
        self.bits[i as usize * self.wpr + j as usize / 64] >> (j % 64) & 1 == 1
    }

    /// The words of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.wpr..(i + 1) * self.wpr]
    }

    /// Number of set bits.
    pub fn nnz(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All set `(row, col)` pairs in row-major order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            for (wi, &word) in self.row(i).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let j = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    /// Set columns of row `i`, ascending.
    pub fn row_indices(&self, i: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, &word) in self.row(i).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                out.push((wi * 64) as u32 + word.trailing_zeros());
                word &= word - 1;
            }
        }
        out
    }

    /// `self |= other`; returns `true` if any bit changed. This is the
    /// matrix union of Algorithm 1 line 9.
    pub fn union_in_place(&mut self, other: &DenseBitMatrix) -> bool {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut changed = 0u64;
        for (a, &b) in self.bits.iter_mut().zip(other.bits.iter()) {
            changed |= b & !*a;
            *a |= b;
        }
        changed != 0
    }

    /// Boolean matrix product `self × other` (serial kernel).
    ///
    /// ```
    /// use cfpq_matrix::DenseBitMatrix;
    /// let a = DenseBitMatrix::from_pairs(3, &[(0, 1)]);
    /// let b = DenseBitMatrix::from_pairs(3, &[(1, 2)]);
    /// assert_eq!(a.multiply(&b).pairs(), vec![(0, 2)]); // path composition
    /// ```
    pub fn multiply(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut c = DenseBitMatrix::zeros(self.n);
        multiply_rows(self, other, 0, &mut c.bits);
        c
    }

    /// Boolean matrix product with row blocks computed in parallel on the
    /// `device` pool.
    ///
    /// Small matrices run serially: kernel dispatch has a fixed latency
    /// (as GPU offload pays launch/transfer costs), so offloading only
    /// pays off past a size threshold.
    pub fn multiply_on(&self, other: &DenseBitMatrix, device: &Device) -> DenseBitMatrix {
        self.multiply_masked_opt_on(other, None, device)
    }

    /// Masked Boolean product `(self × other) \ mask`: entries already
    /// present in `mask` are ANDed out of every accumulated output row,
    /// so the result is always disjoint from `mask`.
    ///
    /// This is the kernel behind the semi-naive `MaskedDelta` fixpoint
    /// strategy: passing the accumulated closure matrix as `mask` means
    /// the product only materializes *new* entries, and rows the mask
    /// already saturates produce no output at all.
    ///
    /// ```
    /// use cfpq_matrix::DenseBitMatrix;
    /// let a = DenseBitMatrix::from_pairs(3, &[(0, 1), (1, 1)]);
    /// let b = DenseBitMatrix::from_pairs(3, &[(1, 2)]);
    /// let mask = DenseBitMatrix::from_pairs(3, &[(0, 2)]);
    /// assert_eq!(a.multiply_masked(&b, &mask).pairs(), vec![(1, 2)]);
    /// ```
    pub fn multiply_masked(&self, other: &DenseBitMatrix, mask: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        assert_eq!(self.n, mask.n, "mask dimension mismatch");
        let mut c = DenseBitMatrix::zeros(self.n);
        multiply_rows_masked(self, other, Some(mask), 0, &mut c.bits);
        c
    }

    /// [`DenseBitMatrix::multiply_masked`] with row blocks computed in
    /// parallel on the `device` pool (same offload threshold as
    /// [`DenseBitMatrix::multiply_on`]).
    pub fn multiply_masked_on(
        &self,
        other: &DenseBitMatrix,
        mask: &DenseBitMatrix,
        device: &Device,
    ) -> DenseBitMatrix {
        assert_eq!(self.n, mask.n, "mask dimension mismatch");
        self.multiply_masked_opt_on(other, Some(mask), device)
    }

    /// Shared offload scaffold of the serial-fallback threshold, row
    /// chunking and scoped dispatch for the masked and unmasked products.
    fn multiply_masked_opt_on(
        &self,
        other: &DenseBitMatrix,
        mask: Option<&DenseBitMatrix>,
        device: &Device,
    ) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        const OFFLOAD_THRESHOLD_N: usize = 192;
        if device.n_workers() == 1 || self.n < OFFLOAD_THRESHOLD_N {
            return match mask {
                Some(m) => self.multiply_masked(other, m),
                None => self.multiply(other),
            };
        }
        let mut c = DenseBitMatrix::zeros(self.n);
        let rows_per = self.n.div_ceil(device.n_workers()).max(1);
        let wpr = self.wpr;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
            .bits
            .chunks_mut(rows_per * wpr)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let first_row = chunk_idx * rows_per;
                Box::new(move || multiply_rows_masked(self, other, mask, first_row, chunk))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        device.run_scoped(tasks);
        c
    }

    /// Grows the matrix to `n × n`, keeping existing bits (new rows and
    /// columns are zero). `n` must not shrink the matrix. This is the
    /// node-growth hook behind `BoolEngine::grow`: a `GraphIndex` whose
    /// universe expands rebuilds each label matrix at the new word
    /// stride.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "Boolean matrices only grow");
        if n == self.n {
            return;
        }
        let wpr = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * wpr];
        for i in 0..self.n {
            bits[i * wpr..i * wpr + self.wpr].copy_from_slice(self.row(i));
        }
        self.n = n;
        self.wpr = wpr;
        self.bits = bits;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseBitMatrix {
        let mut t = DenseBitMatrix::zeros(self.n);
        for (i, j) in self.pairs() {
            t.set(j, i);
        }
        t
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Computes rows `first_row ..` of `a × b` into `out` (a slice of whole
/// rows, `out.len() / a.wpr` rows long). Shared by the serial and
/// device-parallel kernels.
fn multiply_rows(a: &DenseBitMatrix, b: &DenseBitMatrix, first_row: usize, out: &mut [u64]) {
    multiply_rows_masked(a, b, None, first_row, out);
}

// Per-thread row accumulator for the dense kernels. Each output row is
// OR-accumulated here — `wpr` words that stay L1-resident across the
// whole product — and copied into the (cold, freshly-zeroed) output
// buffer once, only when nonzero. Without it every OR pass streams
// read-modify-writes through the `zeros()`-sized output allocation,
// which shows up on large-`n` profiles. Device workers are persistent
// threads, so the buffer amortizes across every product of a solve.
thread_local! {
    static ROW_SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// [`multiply_rows`] with an optional complement mask: after a row is
/// accumulated, every word already set in the mask row is ANDed out, so
/// the output never regenerates known entries. Rows whose mask is fully
/// saturated (all `n` columns set) skip the accumulation entirely.
fn multiply_rows_masked(
    a: &DenseBitMatrix,
    b: &DenseBitMatrix,
    mask: Option<&DenseBitMatrix>,
    first_row: usize,
    out: &mut [u64],
) {
    let wpr = a.wpr;
    ROW_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.len() < wpr {
            scratch.resize(wpr, 0);
        }
        let acc = &mut scratch[..wpr];
        for (local_i, crow) in out.chunks_mut(wpr).enumerate() {
            let i = first_row + local_i;
            let arow = a.row(i);
            // An empty left row yields an empty output row; skip the mask
            // popcount and AND-out passes (the masked-delta hot path has a
            // mostly-empty Δ as the left operand).
            if arow.iter().all(|&w| w == 0) {
                continue;
            }
            let mrow = mask.map(|m| m.row(i));
            if let Some(mrow) = mrow {
                // A saturated mask row cannot admit any new entry.
                let set: usize = mrow.iter().map(|w| w.count_ones() as usize).sum();
                if set == a.n {
                    continue;
                }
            }
            acc.fill(0);
            for (wi, &aw) in arow.iter().enumerate() {
                let mut aw = aw;
                while aw != 0 {
                    let k = wi * 64 + aw.trailing_zeros() as usize;
                    aw &= aw - 1;
                    let brow = b.row(k);
                    for (cw, &bw) in acc.iter_mut().zip(brow.iter()) {
                        *cw |= bw;
                    }
                }
            }
            if let Some(mrow) = mrow {
                for (cw, &mw) in acc.iter_mut().zip(mrow.iter()) {
                    *cw &= !mw;
                }
            }
            if acc.iter().any(|&w| w != 0) {
                crow.copy_from_slice(acc);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = DenseBitMatrix::zeros(100);
        m.set(0, 0);
        m.set(63, 64);
        m.set(99, 99);
        assert!(m.get(0, 0) && m.get(63, 64) && m.get(99, 99));
        assert!(!m.get(0, 1));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.pairs(), vec![(0, 0), (63, 64), (99, 99)]);
    }

    #[test]
    fn identity_multiplication() {
        let m = DenseBitMatrix::from_pairs(10, &[(1, 2), (3, 4), (9, 0)]);
        let id = DenseBitMatrix::identity(10);
        assert_eq!(m.multiply(&id), m);
        assert_eq!(id.multiply(&m), m);
    }

    #[test]
    fn small_product() {
        // Path 0 -> 1 -> 2 composes to 0 -> 2.
        let a = DenseBitMatrix::from_pairs(3, &[(0, 1)]);
        let b = DenseBitMatrix::from_pairs(3, &[(1, 2)]);
        let c = a.multiply(&b);
        assert_eq!(c.pairs(), vec![(0, 2)]);
    }

    #[test]
    fn product_matches_naive_reference() {
        // Pseudo-random matrices vs an O(n^3) triple loop.
        let n = 70usize;
        let mut a = DenseBitMatrix::zeros(n);
        let mut b = DenseBitMatrix::zeros(n);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..300 {
            a.set((next() % n as u64) as u32, (next() % n as u64) as u32);
            b.set((next() % n as u64) as u32, (next() % n as u64) as u32);
        }
        let c = a.multiply(&b);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let expect = (0..n as u32).any(|k| a.get(i, k) && b.get(k, j));
                assert_eq!(c.get(i, j), expect, "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_product_equals_serial() {
        let n = 130usize;
        let mut a = DenseBitMatrix::zeros(n);
        let mut b = DenseBitMatrix::zeros(n);
        for i in 0..n as u32 {
            a.set(i, (i * 7 + 3) % n as u32);
            a.set(i, (i * 13 + 1) % n as u32);
            b.set(i, (i * 5 + 2) % n as u32);
        }
        let serial = a.multiply(&b);
        for workers in [1, 2, 3, 8] {
            let device = Device::new(workers);
            assert_eq!(a.multiply_on(&b, &device), serial, "workers = {workers}");
        }
    }

    #[test]
    fn union_detects_change() {
        let mut a = DenseBitMatrix::from_pairs(5, &[(0, 1)]);
        let b = DenseBitMatrix::from_pairs(5, &[(0, 1), (2, 3)]);
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b), "second union is a no-op");
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseBitMatrix::from_pairs(8, &[(0, 7), (3, 3), (5, 1)]);
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(7, 0));
    }

    #[test]
    fn zero_sized_matrix() {
        let m = DenseBitMatrix::zeros(0);
        let c = m.multiply(&m);
        assert_eq!(c.n(), 0);
        assert!(c.is_zero());
        let d = Device::new(4);
        assert_eq!(m.multiply_on(&m, &d).n(), 0);
    }

    #[test]
    fn row_indices_sorted() {
        let m = DenseBitMatrix::from_pairs(130, &[(1, 100), (1, 3), (1, 64)]);
        assert_eq!(m.row_indices(1), vec![3, 64, 100]);
        assert!(m.row_indices(0).is_empty());
    }
}

impl DenseBitMatrix {
    /// Sets every bit of `pairs` in place; returns `true` if any bit was
    /// newly set. This is the point-update path behind
    /// `BoolEngine::union_pairs` — a `GraphIndex` absorbing an edge batch
    /// touches only the addressed words instead of building a whole
    /// matrix to union.
    pub fn insert_pairs(&mut self, pairs: &[(u32, u32)]) -> bool {
        let mut changed = false;
        for &(i, j) in pairs {
            debug_assert!((i as usize) < self.n && (j as usize) < self.n);
            let w = &mut self.bits[i as usize * self.wpr + j as usize / 64];
            let bit = 1u64 << (j % 64);
            changed |= *w & bit == 0;
            *w |= bit;
        }
        changed
    }

    /// `self \ other` — bits set in `self` but not `other`. Used by the
    /// semi-naive (delta) closure variant in `cfpq-core`.
    pub fn difference(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (a, &b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
        out
    }

    /// `self ∩ other` — bitwise AND. Used by the conjunctive-grammar
    /// extension in `cfpq-core`.
    pub fn intersect(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (a, &b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        out
    }
}

#[cfg(test)]
mod setops_tests {
    use super::*;

    #[test]
    fn difference_and_intersect() {
        let a = DenseBitMatrix::from_pairs(4, &[(0, 1), (2, 3), (3, 3)]);
        let b = DenseBitMatrix::from_pairs(4, &[(2, 3), (1, 1)]);
        assert_eq!(a.difference(&b).pairs(), vec![(0, 1), (3, 3)]);
        assert_eq!(a.intersect(&b).pairs(), vec![(2, 3)]);
        assert!(a.difference(&a).is_zero());
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn insert_pairs_in_place() {
        let mut m = DenseBitMatrix::from_pairs(130, &[(0, 1), (64, 64)]);
        assert!(m.insert_pairs(&[(0, 1), (2, 100)]), "one new bit");
        assert_eq!(m.pairs(), vec![(0, 1), (2, 100), (64, 64)]);
        assert!(!m.insert_pairs(&[(0, 1), (64, 64)]), "all known");
        assert!(!m.insert_pairs(&[]), "empty batch is a no-op");
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn masked_product_equals_product_minus_mask() {
        let n = 70usize;
        let mut a = DenseBitMatrix::zeros(n);
        let mut b = DenseBitMatrix::zeros(n);
        let mut mask = DenseBitMatrix::zeros(n);
        for i in 0..n as u32 {
            a.set(i, (i * 7 + 3) % n as u32);
            b.set(i, (i * 13 + 5) % n as u32);
            mask.set(i, (i * 11 + 2) % n as u32);
            mask.set((i * 3) % n as u32, i);
        }
        let expect = a.multiply(&b).difference(&mask);
        assert_eq!(a.multiply_masked(&b, &mask), expect);
        assert!(a.multiply_masked(&b, &mask).intersect(&mask).is_zero());
    }

    #[test]
    fn masked_product_against_full_mask_is_zero() {
        let mut full = DenseBitMatrix::zeros(9);
        for i in 0..9u32 {
            for j in 0..9u32 {
                full.set(i, j);
            }
        }
        let a = DenseBitMatrix::from_pairs(9, &[(0, 1), (5, 5)]);
        assert!(a.multiply_masked(&a, &full).is_zero());
    }

    #[test]
    fn parallel_masked_product_equals_serial() {
        let n = 210usize; // above the offload threshold
        let mut a = DenseBitMatrix::zeros(n);
        let mut mask = DenseBitMatrix::zeros(n);
        for i in 0..n as u32 {
            a.set(i, (i * 31 + 7) % n as u32);
            a.set((i * 5) % n as u32, i);
            mask.set(i, (i * 17 + 1) % n as u32);
        }
        let serial = a.multiply_masked(&a, &mask);
        for workers in [1, 2, 4] {
            let d = Device::new(workers);
            assert_eq!(a.multiply_masked_on(&a, &mask, &d), serial, "w={workers}");
        }
    }
}
