//! Dense Boolean matrices: row-major bitsets over `u64` words.
//!
//! This is the representation the paper's dGPU implementation uses
//! ("row-major order for general matrix representation"). Multiplication
//! is the classic bitset kernel: for every set bit `(i, k)` of `A`, OR row
//! `k` of `B` into row `i` of `C` — `O(n²·n/64)` word operations.

use crate::device::Device;

/// A dense `n × n` Boolean matrix stored as row-major bitset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseBitMatrix {
    n: usize,
    /// Words per row (`ceil(n / 64)`).
    wpr: usize,
    bits: Vec<u64>,
}

impl DenseBitMatrix {
    /// Creates the zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        let wpr = n.div_ceil(64).max(1);
        Self {
            n,
            wpr,
            bits: vec![0; n * wpr],
        }
    }

    /// Creates the identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n as u32 {
            m.set(i, i);
        }
        m
    }

    /// Builds a matrix from `(row, col)` pairs.
    pub fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let mut m = Self::zeros(n);
        for &(i, j) in pairs {
            m.set(i, j);
        }
        m
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Sets bit `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: u32, j: u32) {
        debug_assert!((i as usize) < self.n && (j as usize) < self.n);
        self.bits[i as usize * self.wpr + j as usize / 64] |= 1u64 << (j % 64);
    }

    /// Reads bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> bool {
        self.bits[i as usize * self.wpr + j as usize / 64] >> (j % 64) & 1 == 1
    }

    /// The words of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.wpr..(i + 1) * self.wpr]
    }

    /// Number of set bits.
    pub fn nnz(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All set `(row, col)` pairs in row-major order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            for (wi, &word) in self.row(i).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let j = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    /// Set columns of row `i`, ascending.
    pub fn row_indices(&self, i: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, &word) in self.row(i).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                out.push((wi * 64) as u32 + word.trailing_zeros());
                word &= word - 1;
            }
        }
        out
    }

    /// `self |= other`; returns `true` if any bit changed. This is the
    /// matrix union of Algorithm 1 line 9.
    pub fn union_in_place(&mut self, other: &DenseBitMatrix) -> bool {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut changed = 0u64;
        for (a, &b) in self.bits.iter_mut().zip(other.bits.iter()) {
            changed |= b & !*a;
            *a |= b;
        }
        changed != 0
    }

    /// Boolean matrix product `self × other` (serial kernel).
    ///
    /// ```
    /// use cfpq_matrix::DenseBitMatrix;
    /// let a = DenseBitMatrix::from_pairs(3, &[(0, 1)]);
    /// let b = DenseBitMatrix::from_pairs(3, &[(1, 2)]);
    /// assert_eq!(a.multiply(&b).pairs(), vec![(0, 2)]); // path composition
    /// ```
    pub fn multiply(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut c = DenseBitMatrix::zeros(self.n);
        multiply_rows(self, other, 0, &mut c.bits);
        c
    }

    /// Boolean matrix product with row blocks computed in parallel on the
    /// `device` pool.
    ///
    /// Small matrices run serially: kernel dispatch has a fixed latency
    /// (as GPU offload pays launch/transfer costs), so offloading only
    /// pays off past a size threshold.
    pub fn multiply_on(&self, other: &DenseBitMatrix, device: &Device) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        const OFFLOAD_THRESHOLD_N: usize = 192;
        if device.n_workers() == 1 || self.n < OFFLOAD_THRESHOLD_N {
            return self.multiply(other);
        }
        let mut c = DenseBitMatrix::zeros(self.n);
        if self.n == 0 {
            return c;
        }
        let rows_per = self.n.div_ceil(device.n_workers()).max(1);
        let wpr = self.wpr;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
            .bits
            .chunks_mut(rows_per * wpr)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let first_row = chunk_idx * rows_per;
                Box::new(move || multiply_rows(self, other, first_row, chunk))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        device.run_scoped(tasks);
        c
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseBitMatrix {
        let mut t = DenseBitMatrix::zeros(self.n);
        for (i, j) in self.pairs() {
            t.set(j, i);
        }
        t
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Computes rows `first_row ..` of `a × b` into `out` (a slice of whole
/// rows, `out.len() / a.wpr` rows long). Shared by the serial and
/// device-parallel kernels.
fn multiply_rows(a: &DenseBitMatrix, b: &DenseBitMatrix, first_row: usize, out: &mut [u64]) {
    let wpr = a.wpr;
    for (local_i, crow) in out.chunks_mut(wpr).enumerate() {
        let i = first_row + local_i;
        for (wi, &aw) in a.row(i).iter().enumerate() {
            let mut aw = aw;
            while aw != 0 {
                let k = wi * 64 + aw.trailing_zeros() as usize;
                aw &= aw - 1;
                let brow = b.row(k);
                for (cw, &bw) in crow.iter_mut().zip(brow.iter()) {
                    *cw |= bw;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = DenseBitMatrix::zeros(100);
        m.set(0, 0);
        m.set(63, 64);
        m.set(99, 99);
        assert!(m.get(0, 0) && m.get(63, 64) && m.get(99, 99));
        assert!(!m.get(0, 1));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.pairs(), vec![(0, 0), (63, 64), (99, 99)]);
    }

    #[test]
    fn identity_multiplication() {
        let m = DenseBitMatrix::from_pairs(10, &[(1, 2), (3, 4), (9, 0)]);
        let id = DenseBitMatrix::identity(10);
        assert_eq!(m.multiply(&id), m);
        assert_eq!(id.multiply(&m), m);
    }

    #[test]
    fn small_product() {
        // Path 0 -> 1 -> 2 composes to 0 -> 2.
        let a = DenseBitMatrix::from_pairs(3, &[(0, 1)]);
        let b = DenseBitMatrix::from_pairs(3, &[(1, 2)]);
        let c = a.multiply(&b);
        assert_eq!(c.pairs(), vec![(0, 2)]);
    }

    #[test]
    fn product_matches_naive_reference() {
        // Pseudo-random matrices vs an O(n^3) triple loop.
        let n = 70usize;
        let mut a = DenseBitMatrix::zeros(n);
        let mut b = DenseBitMatrix::zeros(n);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..300 {
            a.set((next() % n as u64) as u32, (next() % n as u64) as u32);
            b.set((next() % n as u64) as u32, (next() % n as u64) as u32);
        }
        let c = a.multiply(&b);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let expect = (0..n as u32).any(|k| a.get(i, k) && b.get(k, j));
                assert_eq!(c.get(i, j), expect, "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_product_equals_serial() {
        let n = 130usize;
        let mut a = DenseBitMatrix::zeros(n);
        let mut b = DenseBitMatrix::zeros(n);
        for i in 0..n as u32 {
            a.set(i, (i * 7 + 3) % n as u32);
            a.set(i, (i * 13 + 1) % n as u32);
            b.set(i, (i * 5 + 2) % n as u32);
        }
        let serial = a.multiply(&b);
        for workers in [1, 2, 3, 8] {
            let device = Device::new(workers);
            assert_eq!(a.multiply_on(&b, &device), serial, "workers = {workers}");
        }
    }

    #[test]
    fn union_detects_change() {
        let mut a = DenseBitMatrix::from_pairs(5, &[(0, 1)]);
        let b = DenseBitMatrix::from_pairs(5, &[(0, 1), (2, 3)]);
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b), "second union is a no-op");
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseBitMatrix::from_pairs(8, &[(0, 7), (3, 3), (5, 1)]);
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(7, 0));
    }

    #[test]
    fn zero_sized_matrix() {
        let m = DenseBitMatrix::zeros(0);
        let c = m.multiply(&m);
        assert_eq!(c.n(), 0);
        assert!(c.is_zero());
        let d = Device::new(4);
        assert_eq!(m.multiply_on(&m, &d).n(), 0);
    }

    #[test]
    fn row_indices_sorted() {
        let m = DenseBitMatrix::from_pairs(130, &[(1, 100), (1, 3), (1, 64)]);
        assert_eq!(m.row_indices(1), vec![3, 64, 100]);
        assert!(m.row_indices(0).is_empty());
    }
}

impl DenseBitMatrix {
    /// `self \ other` — bits set in `self` but not `other`. Used by the
    /// semi-naive (delta) closure variant in `cfpq-core`.
    pub fn difference(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (a, &b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
        out
    }

    /// `self ∩ other` — bitwise AND. Used by the conjunctive-grammar
    /// extension in `cfpq-core`.
    pub fn intersect(&self, other: &DenseBitMatrix) -> DenseBitMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (a, &b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        out
    }
}

#[cfg(test)]
mod setops_tests {
    use super::*;

    #[test]
    fn difference_and_intersect() {
        let a = DenseBitMatrix::from_pairs(4, &[(0, 1), (2, 3), (3, 3)]);
        let b = DenseBitMatrix::from_pairs(4, &[(2, 3), (1, 1)]);
        assert_eq!(a.difference(&b).pairs(), vec![(0, 1), (3, 3)]);
        assert_eq!(a.intersect(&b).pairs(), vec![(2, 3)]);
        assert!(a.difference(&a).is_zero());
        assert_eq!(a.intersect(&a), a);
    }
}
