//! # cfpq-matrix
//!
//! Boolean and set-valued matrix kernels — the computational core of the
//! paper. Algorithm 1 reduces CFPQ to a transitive closure whose inner
//! loop is matrix multiplication; Valiant's observation (§3) decomposes
//! the set-valued product into `|N|²` *Boolean* matrix multiplications.
//! This crate provides both layers:
//!
//! * [`DenseBitMatrix`] — row-major bitset matrix (the paper's dGPU
//!   representation, "row-major order for general matrix representation"),
//! * [`CsrMatrix`] — Boolean CSR (the paper's sCPU/sGPU representation),
//! * [`Device`] — a multi-worker execution device standing in for the GPU
//!   (see DESIGN.md §3 on this substitution),
//! * [`engine`] — the [`engine::BoolEngine`] abstraction the solvers are
//!   generic over: serial/parallel × dense/sparse backends,
//! * [`SetMatrix`] — the paper-literal matrix whose elements are subsets
//!   of `N`, with the element product `N1 · N2 = {A | A → BC, B ∈ N1,
//!   C ∈ N2}` of §2,
//! * [`closure`] — the `a_cf` squaring closure and the `a⁺` Valiant-style
//!   closure whose equivalence is Theorem 1.

pub mod adaptive;
pub mod closure;
pub mod dense;
pub mod device;
pub mod engine;
pub mod length;
pub mod setmatrix;
pub mod sparse;
pub mod tiled;

pub use adaptive::{AdaptiveEngine, AdaptiveMatrix};
pub use dense::DenseBitMatrix;
pub use device::{Device, Parallelism};
pub use engine::{
    BoolEngine, BoolMat, DenseEngine, KernelCounters, MaskedJob, ParDenseEngine, ParSparseEngine,
    SparseEngine,
};
pub use length::{CsrLenMatrix, DenseLenMatrix, LenEngine, LenJob, LenMat, NO_PATH};
pub use setmatrix::SetMatrix;
pub use sparse::CsrMatrix;
pub use tiled::{TiledBitMatrix, TiledEngine, TILE};
