//! The execution "device" standing in for the paper's GPU.
//!
//! The paper offloads whole-matrix multiplications to CUBLAS (dense) and
//! CUSPARSE (sparse) on an NVIDIA GTX 1070. This repository has no GPU,
//! so per DESIGN.md §3 the device is a **persistent worker pool**:
//! workers are created once (like a CUDA context) and kernels are
//! submitted as batches of row-block tasks, so per-kernel overhead is a
//! queue hand-off rather than thread creation. The algorithm side is
//! unchanged — the closure loop hands whole matrices to an opaque device
//! exactly as the paper's implementations hand them to CUDA.
//!
//! `Device` is a cheaply clonable handle (like a CUDA stream handle);
//! the pool shuts down when the last handle drops.
//!
//! ## Safety
//!
//! [`Device::run_scoped`] accepts non-`'static` tasks and erases their
//! lifetime to queue them on pool workers. This is the classic
//! scoped-thread-pool pattern and is sound because the method does not
//! return until every submitted task has completed (panic-safe barrier:
//! completion is signalled from a `Drop` guard), so no borrow outlives
//! its referent.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send>;

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(n_workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cfpq-device-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn device worker")
            })
            .collect();
        Self { shared, workers }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("device queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("device queue poisoned");
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("device queue poisoned");
            }
        };
        task();
    }
}

/// Barrier shared between a `run_scoped` caller and its tasks.
struct Completion {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// Decrements the barrier on drop so a panicking task still signals.
struct CompletionGuard(Arc<Completion>);

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        let mut r = self.0.remaining.lock().expect("completion poisoned");
        *r -= 1;
        if *r == 0 {
            self.0.done.notify_all();
        }
    }
}

/// A CPU multi-worker device with a persistent pool. `Device::new(1)`
/// runs tasks inline on the caller (no pool), which tests use to confirm
/// worker-count independence.
#[derive(Clone)]
pub struct Device {
    n_workers: usize,
    /// `None` for the single-worker (inline) device.
    pool: Option<Arc<Pool>>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("n_workers", &self.n_workers)
            .finish()
    }
}

impl Device {
    /// Creates a device with `n_workers` parallel workers (min 1).
    pub fn new(n_workers: usize) -> Self {
        let n_workers = n_workers.max(1);
        Self {
            n_workers,
            pool: (n_workers > 1).then(|| Arc::new(Pool::new(n_workers))),
        }
    }

    /// A device sized to the machine's available parallelism.
    pub fn host_parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Splits `0..n_items` into at most `n_workers` contiguous ranges of
    /// near-equal size.
    pub fn partition(&self, n_items: usize) -> Vec<Range<usize>> {
        partition(n_items, self.n_workers)
    }

    /// Runs the given tasks on the pool and returns once **all** have
    /// completed. Tasks may borrow from the caller's stack (see the
    /// module-level safety discussion). Panics if any task panicked.
    pub fn run_scoped<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let Some(pool) = &self.pool else {
            for t in tasks {
                t();
            }
            return;
        };
        let completion = Arc::new(Completion {
            remaining: Mutex::new(tasks.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        // The recorder hook: capture the caller's observability context
        // (installed recorder + innermost open span) so spans opened
        // inside tasks land in the caller's trace, parented under the
        // span that launched the work — even when the task runs on a
        // pool thread. Skipped entirely when tracing is off.
        let obs_ctx = cfpq_obs::current_context().filter(|(r, _)| r.is_enabled());
        {
            let mut q = pool.shared.queue.lock().expect("device queue poisoned");
            for task in tasks {
                let c = Arc::clone(&completion);
                let ctx = obs_ctx.clone();
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let guard = CompletionGuard(Arc::clone(&c));
                    let _obs = ctx.map(|(rec, parent)| cfpq_obs::install_with_parent(rec, parent));
                    if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                        c.panicked.store(true, Ordering::SeqCst);
                    }
                    drop(guard);
                });
                // SAFETY: `wrapped` only borrows data that outlives 'env,
                // and this function blocks below until the task has run
                // to completion (the CompletionGuard fires even on
                // panic), so the borrow cannot outlive its referent.
                let erased: Task = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                q.tasks.push_back(erased);
            }
        }
        pool.shared.available.notify_all();
        // Caller participation: instead of sleeping, the submitting thread
        // drains queued tasks alongside the workers (removes wake-up
        // latency and adds one executor — the "host helps the device"
        // pattern).
        loop {
            let task = {
                let mut q = pool.shared.queue.lock().expect("device queue poisoned");
                q.tasks.pop_front()
            };
            match task {
                Some(t) => t(),
                None => break,
            }
        }
        let mut remaining = completion.remaining.lock().expect("completion poisoned");
        while *remaining > 0 {
            remaining = completion
                .done
                .wait(remaining)
                .expect("completion poisoned");
        }
        drop(remaining);
        if completion.panicked.load(Ordering::SeqCst) {
            panic!("device task panicked");
        }
    }

    /// Maps `f` over `items` with each item as one pool task, collecting
    /// results in order. Used to batch independent whole-matrix kernels
    /// (one per grammar rule) onto the device — the paper's §7 remark
    /// that "matrix multiplication in the main loop … may be performed on
    /// different GPGPU independently".
    ///
    /// Must not be called from inside a device task (the caller blocks on
    /// the pool, so nested submission from every worker could starve).
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        if self.pool.is_none() || items.len() <= 1 {
            return items.into_iter().map(&f).collect();
        }
        let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .zip(items)
                .map(|(slot, item)| {
                    Box::new(move || {
                        *slot = Some(f(item));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run_scoped(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("device task completed"))
            .collect()
    }

    /// Runs `f` over each partition of `0..n_items` on the pool and
    /// collects the results in partition order. This is the map primitive
    /// the sparse kernels use (each worker produces the rows of its
    /// block).
    pub fn par_map_ranges<T, F>(&self, n_items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = self.partition(n_items);
        if ranges.len() <= 1 || self.pool.is_none() {
            return ranges.into_iter().map(&f).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(ranges.len());
        slots.resize_with(ranges.len(), || None);
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .zip(ranges)
                .map(|(slot, range)| {
                    Box::new(move || {
                        *slot = Some(f(range));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run_scoped(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("device task completed"))
            .collect()
    }
}

/// One thread budget for every pool in the process.
///
/// Two layers of this workspace spawn threads: the [`Device`] kernel
/// pool (the paper's GPU stand-in) and, since the `cfpq-service` crate,
/// a query-scheduler worker pool. Sizing each to
/// `available_parallelism` independently — which
/// [`Device::host_parallel`] does when used naively — oversubscribes
/// the machine as soon as both exist: `W` service workers each driving
/// an `N`-worker device ask for `W × N` runnable threads on `N` cores.
///
/// `Parallelism` is the coordination point: construct one budget for
/// the process (`--threads` on the CLIs) and [`Parallelism::split`] it
/// between the two layers, so `service workers + device workers` never
/// exceeds the budget.
///
/// ```
/// use cfpq_matrix::Parallelism;
///
/// let budget = Parallelism::new(4);
/// let (workers, device) = budget.split(3);
/// assert_eq!(workers, 3);
/// assert_eq!(workers + device.n_workers(), 4);
/// // Asking for the whole budget leaves the device inline (1 worker
/// // means "run kernels on the caller", adding no thread).
/// let (workers, device) = budget.split(8);
/// assert_eq!((workers, device.n_workers()), (4, 1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Parallelism {
    total: usize,
}

impl Parallelism {
    /// A budget of `total` threads (clamped to at least 1; `0` means
    /// "whatever the machine has", like [`Parallelism::auto`]).
    pub fn new(total: usize) -> Self {
        if total == 0 {
            Self::auto()
        } else {
            Self { total }
        }
    }

    /// A budget sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let total = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self { total }
    }

    /// The total thread budget.
    pub fn total(self) -> usize {
        self.total
    }

    /// A [`Device`] consuming the whole budget — what a single-caller
    /// workload (no service pool) should use instead of
    /// [`Device::host_parallel`].
    pub fn device(self) -> Device {
        Device::new(self.total)
    }

    /// Splits the budget between `service_workers` scheduler threads and
    /// the kernel pool: the workers are clamped to the budget, and the
    /// device gets whatever remains (minimum 1, i.e. inline execution on
    /// the calling worker — no extra thread). The invariant is
    /// `workers + device.n_workers() <= max(total, workers + 1)`, so the
    /// two pools never oversubscribe the budget.
    pub fn split(self, service_workers: usize) -> (usize, Device) {
        let workers = service_workers.clamp(1, self.total);
        let device = Device::new((self.total - workers).max(1));
        (workers, device)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

/// Splits `0..n_items` into at most `n_parts` near-equal contiguous
/// ranges; never returns empty ranges.
pub fn partition(n_items: usize, n_parts: usize) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let n_parts = n_parts.clamp(1, n_items);
    let base = n_items / n_parts;
    let extra = n_items % n_parts;
    let mut ranges = Vec::with_capacity(n_parts);
    let mut start = 0;
    for p in 0..n_parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n_items);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallelism_budget_is_never_oversubscribed() {
        for total in [1usize, 2, 4, 7] {
            let p = Parallelism::new(total);
            assert_eq!(p.total(), total);
            assert_eq!(p.device().n_workers(), total);
            for req in [1usize, 2, 4, 16] {
                let (workers, device) = p.split(req);
                assert!(workers >= 1 && workers <= total);
                assert_eq!(workers, req.min(total));
                // The device only gets threads the workers left over
                // (an inline device contributes no extra thread).
                let device_threads = if device.n_workers() > 1 {
                    device.n_workers()
                } else {
                    0
                };
                assert!(
                    workers + device_threads <= total,
                    "total {total} req {req}: {workers} + {device_threads}"
                );
            }
        }
        // 0 = auto: at least one thread.
        assert!(Parallelism::new(0).total() >= 1);
        assert_eq!(Parallelism::default().total(), Parallelism::auto().total());
    }

    #[test]
    fn partition_covers_everything() {
        for n_items in [0usize, 1, 5, 64, 100, 101] {
            for n_parts in [1usize, 2, 3, 7, 200] {
                let ranges = partition(n_items, n_parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n_items, "items {n_items} parts {n_parts}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn partition_balance() {
        let ranges = partition(10, 3);
        let lens: Vec<_> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn par_map_preserves_order() {
        let d = Device::new(4);
        let out = d.par_map_ranges(100, |r| r.start);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn single_worker_is_serial_inline() {
        let d = Device::new(1);
        let out = d.par_map_ranges(10, |r| r.len());
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn zero_items() {
        let d = Device::new(8);
        let out: Vec<usize> = d.par_map_ranges(0, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Device::new(0).n_workers(), 1);
    }

    #[test]
    fn pool_is_reusable_across_many_submissions() {
        // A persistent pool must survive thousands of kernel launches —
        // the property the paper's per-iteration offload relies on.
        let d = Device::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            let out = d.par_map_ranges(9, |r| {
                counter.fetch_add(r.len(), Ordering::Relaxed);
                r.len()
            });
            assert_eq!(out.iter().sum::<usize>(), 9);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 9);
    }

    #[test]
    fn scoped_borrows_are_visible_after_return() {
        let d = Device::new(4);
        let mut data = vec![0u64; 64];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(16)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for x in chunk.iter_mut() {
                            *x = i as u64 + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            d.run_scoped(tasks);
        }
        assert_eq!(data[0], 1);
        assert_eq!(data[16], 2);
        assert_eq!(data[63], 4);
    }

    #[test]
    fn clone_shares_the_pool() {
        let d = Device::new(2);
        let d2 = d.clone();
        assert_eq!(d2.n_workers(), 2);
        let out = d2.par_map_ranges(10, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 10);
        drop(d);
        // The clone keeps the pool alive.
        let out = d2.par_map_ranges(10, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 10);
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let d = Device::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| {}),
                Box::new(|| panic!("boom")),
                Box::new(|| {}),
            ];
            d.run_scoped(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool must still be usable afterwards.
        let out = d.par_map_ranges(4, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 4);
    }

    #[test]
    fn par_map_items_in_order() {
        let d = Device::new(3);
        let out = d.par_map((0..20).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<i32>>());
        // Single item short-circuits.
        let out = d.par_map(vec![7], |x: i32| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn concurrent_scopes_from_multiple_threads() {
        let d = Device::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let out = d.par_map_ranges(16, |r| r.len() * (t + 1));
                        assert_eq!(out.iter().sum::<usize>(), 16 * (t + 1));
                    }
                });
            }
        });
    }
}
