//! Sparse Boolean matrices in CSR (compressed sparse row) format.
//!
//! This is the representation behind the paper's best-performing
//! implementations (sCPU and sGPU use "CSR format for sparse matrix
//! representation"). Multiplication is a Boolean SpGEMM with a dense
//! bitset row accumulator; union is a per-row sorted merge.

use crate::device::Device;
use std::ops::Range;

/// An `n × n` Boolean matrix in CSR format; column indices per row are
/// strictly ascending.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrMatrix {
    n: usize,
    /// `row_ptr[i] .. row_ptr[i+1]` indexes `cols` for row `i`.
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
}

impl CsrMatrix {
    /// Creates the zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            row_ptr: vec![0; n + 1],
            cols: Vec::new(),
        }
    }

    /// Creates the identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self {
            n,
            row_ptr: (0..=n).collect(),
            cols: (0..n as u32).collect(),
        }
    }

    /// Builds a matrix from `(row, col)` pairs (duplicates allowed).
    pub fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(i, j) in pairs {
            debug_assert!((i as usize) < n && (j as usize) < n);
            rows[i as usize].push(j);
        }
        for r in &mut rows {
            r.sort_unstable();
            r.dedup();
        }
        Self::from_rows(rows)
    }

    /// Assembles from per-row sorted, deduplicated column lists.
    pub fn from_rows(rows: Vec<Vec<u32>>) -> Self {
        let n = rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut cols = Vec::with_capacity(nnz);
        for r in rows {
            debug_assert!(
                r.windows(2).all(|w| w[0] < w[1]),
                "rows must be sorted+deduped"
            );
            cols.extend_from_slice(&r);
            row_ptr.push(cols.len());
        }
        Self { n, row_ptr, cols }
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Column indices of row `i` (ascending).
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Reads bit `(i, j)` by binary search.
    pub fn get(&self, i: u32, j: u32) -> bool {
        self.row(i as usize).binary_search(&j).is_ok()
    }

    /// Sets bit `(i, j)`; O(row length) — intended for construction and
    /// tests, not hot loops (use `from_pairs`/`union_in_place`).
    pub fn set(&mut self, i: u32, j: u32) {
        let row = self.row(i as usize);
        let Err(pos) = row.binary_search(&j) else {
            return;
        };
        let insert_at = self.row_ptr[i as usize] + pos;
        self.cols.insert(insert_at, j);
        for p in self.row_ptr[(i as usize + 1)..].iter_mut() {
            *p += 1;
        }
    }

    /// All set `(row, col)` pairs in row-major order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            for &j in self.row(i) {
                out.push((i as u32, j));
            }
        }
        out
    }

    /// True if no entry is stored.
    pub fn is_zero(&self) -> bool {
        self.cols.is_empty()
    }

    /// `self |= other` by per-row sorted merge; returns `true` if any
    /// entry was added.
    pub fn union_in_place(&mut self, other: &CsrMatrix) -> bool {
        assert_eq!(self.n, other.n, "dimension mismatch");
        if other.is_zero() {
            return false;
        }
        let mut changed = false;
        let mut new_rows: Vec<Vec<u32>> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let (a, b) = (self.row(i), other.row(i));
            if b.is_empty() {
                new_rows.push(a.to_vec());
                continue;
            }
            let merged = merge_sorted(a, b);
            changed |= merged.len() != a.len();
            new_rows.push(merged);
        }
        if changed {
            *self = Self::from_rows(new_rows);
        }
        changed
    }

    /// Assembles from a block of flat rows: `row_ends[r]` is the
    /// cumulative entry count after row `r` within `cols`.
    fn from_flat(n: usize, row_ends: Vec<usize>, cols: Vec<u32>) -> Self {
        debug_assert_eq!(row_ends.len(), n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        row_ptr.extend(row_ends);
        Self { n, row_ptr, cols }
    }

    /// Boolean SpGEMM `self × other` (serial). Output rows are drained
    /// straight into the flat CSR `row_ptr`/`cols` arrays — no
    /// intermediate per-row `Vec` allocations.
    pub fn multiply(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut acc = RowAccumulator::new(self.n);
        let (row_ends, cols) = multiply_block(self, other, None, 0..self.n, &mut acc);
        CsrMatrix::from_flat(self.n, row_ends, cols)
    }

    /// Masked Boolean SpGEMM `(self × other) \ mask`: the row accumulator
    /// is seeded with the mask row before accumulation, so bits already
    /// known are never set and the drained output contains only *new*
    /// entries — the result is always disjoint from `mask`.
    ///
    /// This is the kernel behind the semi-naive `MaskedDelta` fixpoint
    /// strategy, where `mask` is the accumulated closure matrix.
    ///
    /// ```
    /// use cfpq_matrix::CsrMatrix;
    /// let a = CsrMatrix::from_pairs(3, &[(0, 1), (1, 1)]);
    /// let b = CsrMatrix::from_pairs(3, &[(1, 2)]);
    /// let mask = CsrMatrix::from_pairs(3, &[(0, 2)]);
    /// assert_eq!(a.multiply_masked(&b, &mask).pairs(), vec![(1, 2)]);
    /// ```
    pub fn multiply_masked(&self, other: &CsrMatrix, mask: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        assert_eq!(self.n, mask.n, "mask dimension mismatch");
        let mut acc = RowAccumulator::new(self.n);
        let (row_ends, cols) = multiply_block(self, other, Some(mask), 0..self.n, &mut acc);
        CsrMatrix::from_flat(self.n, row_ends, cols)
    }

    /// Boolean SpGEMM with row blocks computed in parallel on `device`.
    ///
    /// Small operands run serially: kernel dispatch has a fixed latency
    /// (just as GPU offload pays transfer/launch costs), so offloading
    /// only pays off past a work threshold.
    pub fn multiply_on(&self, other: &CsrMatrix, device: &Device) -> CsrMatrix {
        self.multiply_masked_opt_on(other, None, device)
    }

    /// [`CsrMatrix::multiply_masked`] with row blocks computed in
    /// parallel on `device` (same offload threshold as
    /// [`CsrMatrix::multiply_on`]).
    pub fn multiply_masked_on(
        &self,
        other: &CsrMatrix,
        mask: &CsrMatrix,
        device: &Device,
    ) -> CsrMatrix {
        assert_eq!(self.n, mask.n, "mask dimension mismatch");
        self.multiply_masked_opt_on(other, Some(mask), device)
    }

    fn multiply_masked_opt_on(
        &self,
        other: &CsrMatrix,
        mask: Option<&CsrMatrix>,
        device: &Device,
    ) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        const OFFLOAD_THRESHOLD_NNZ: usize = 64 * 1024;
        if device.n_workers() == 1 || self.nnz() + other.nnz() < OFFLOAD_THRESHOLD_NNZ {
            return match mask {
                Some(m) => self.multiply_masked(other, m),
                None => self.multiply(other),
            };
        }
        let blocks = device.par_map_ranges(self.n, |range: Range<usize>| {
            let mut acc = RowAccumulator::new(self.n);
            multiply_block(self, other, mask, range, &mut acc)
        });
        let mut row_ends = Vec::with_capacity(self.n);
        let mut cols = Vec::new();
        for (block_ends, block_cols) in blocks {
            let base = cols.len();
            row_ends.extend(block_ends.into_iter().map(|e| base + e));
            cols.extend_from_slice(&block_cols);
        }
        CsrMatrix::from_flat(self.n, row_ends, cols)
    }

    /// Grows the matrix to `n × n`, keeping existing entries (a pure
    /// row-pointer append — new rows are empty, and existing column
    /// indices stay valid in the wider universe). `n` must not shrink
    /// the matrix.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "Boolean matrices only grow");
        let last = *self.row_ptr.last().expect("row_ptr nonempty");
        self.row_ptr.resize(n + 1, last);
        self.n = n;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for i in 0..self.n {
            for &j in self.row(i) {
                rows[j as usize].push(i as u32);
            }
        }
        // Rows are filled in ascending i, so already sorted.
        CsrMatrix::from_rows(rows)
    }
}

/// Computes rows `range` of `a × b` (optionally masked) into flat
/// storage: returns per-row cumulative entry counts plus the packed
/// column indices. Shared by the serial and device-parallel kernels.
fn multiply_block(
    a: &CsrMatrix,
    b: &CsrMatrix,
    mask: Option<&CsrMatrix>,
    range: Range<usize>,
    acc: &mut RowAccumulator,
) -> (Vec<usize>, Vec<u32>) {
    let mut row_ends = Vec::with_capacity(range.len());
    let mut cols = Vec::new();
    for i in range {
        let arow = a.row(i);
        // An empty left row yields an empty output row — in the masked
        // delta hot path (sparse Δ left operand, dense closure mask)
        // this skips the O(nnz(mask row)) seed/clear entirely.
        if arow.is_empty() {
            row_ends.push(cols.len());
            continue;
        }
        if let Some(m) = mask {
            acc.seed_mask(m.row(i));
            for &k in arow {
                for &j in b.row(k as usize) {
                    acc.set_masked(j);
                }
            }
            acc.clear_mask();
        } else {
            // Mask-free fast path: no per-entry mask load in the hot loop.
            for &k in arow {
                for &j in b.row(k as usize) {
                    acc.set(j);
                }
            }
        }
        acc.drain_into(&mut cols);
        row_ends.push(cols.len());
    }
    (row_ends, cols)
}

/// A reusable dense bitset accumulator for one output row of SpGEMM,
/// with an optional complement mask: bits seeded via [`Self::seed_mask`]
/// are suppressed by [`Self::set`], so the drain only ever emits entries
/// *not* already known to the mask.
struct RowAccumulator {
    words: Vec<u64>,
    /// Complement-mask words; a bit set here can never enter `words`
    /// through [`Self::set_masked`]. Allocated lazily on first
    /// [`Self::seed_mask`], so unmasked products never pay for it.
    mask: Vec<u64>,
    /// Indices of words touched since the last drain (sparse reset).
    touched: Vec<u32>,
    /// Indices of mask words touched since the last clear.
    mask_touched: Vec<u32>,
}

impl RowAccumulator {
    fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64).max(1)],
            mask: Vec::new(),
            touched: Vec::new(),
            mask_touched: Vec::new(),
        }
    }

    /// Seeds the complement mask with a sorted row of known entries.
    fn seed_mask(&mut self, row: &[u32]) {
        if self.mask.is_empty() {
            self.mask = vec![0; self.words.len()];
        }
        for &j in row {
            let w = (j / 64) as usize;
            if self.mask[w] == 0 {
                self.mask_touched.push(w as u32);
            }
            self.mask[w] |= 1u64 << (j % 64);
        }
    }

    /// Clears the complement mask (sparse reset).
    fn clear_mask(&mut self) {
        for &wi in &self.mask_touched {
            self.mask[wi as usize] = 0;
        }
        self.mask_touched.clear();
    }

    /// Sets bit `j` unconditionally (the unmasked hot path).
    #[inline]
    fn set(&mut self, j: u32) {
        let w = (j / 64) as usize;
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= 1u64 << (j % 64);
    }

    /// Sets bit `j` unless the seeded mask already holds it.
    #[inline]
    fn set_masked(&mut self, j: u32) {
        let w = (j / 64) as usize;
        let bit = (1u64 << (j % 64)) & !self.mask[w];
        if bit == 0 {
            return;
        }
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= bit;
    }

    /// Extracts all set bits in ascending order and clears the buffer.
    #[cfg(test)]
    fn drain_sorted(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Appends all set bits in ascending order to `out` and clears the
    /// buffer.
    fn drain_into(&mut self, out: &mut Vec<u32>) {
        self.touched.sort_unstable();
        for &wi in &self.touched {
            let mut word = self.words[wi as usize];
            self.words[wi as usize] = 0;
            while word != 0 {
                out.push(wi * 64 + word.trailing_zeros());
                word &= word - 1;
            }
        }
        self.touched.clear();
    }
}

/// Merges two strictly-ascending slices into a strictly-ascending vector.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_sorted_into(a, b, &mut out);
    out
}

/// [`merge_sorted`], appending to an existing buffer (the flat
/// `insert_pairs` path merges each touched row straight into the new
/// `cols` storage).
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => {
                out.push(a[x]);
                x += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[y]);
                y += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out.extend_from_slice(&a[x..]);
    out.extend_from_slice(&b[y..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseBitMatrix;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let m = CsrMatrix::from_pairs(4, &[(2, 3), (2, 1), (2, 3), (0, 0)]);
        assert_eq!(m.row(2), &[1, 3]);
        assert_eq!(m.nnz(), 3);
        assert!(m.get(2, 3));
        assert!(!m.get(3, 2));
    }

    #[test]
    fn set_inserts_in_order() {
        let mut m = CsrMatrix::zeros(4);
        m.set(1, 3);
        m.set(1, 0);
        m.set(1, 3); // duplicate ignored
        m.set(2, 2);
        assert_eq!(m.row(1), &[0, 3]);
        assert_eq!(m.row(2), &[2]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn identity_multiplication() {
        let m = CsrMatrix::from_pairs(6, &[(0, 5), (3, 1), (5, 5)]);
        let id = CsrMatrix::identity(6);
        assert_eq!(m.multiply(&id), m);
        assert_eq!(id.multiply(&m), m);
    }

    #[test]
    fn union_merge_and_change_detection() {
        let mut a = CsrMatrix::from_pairs(4, &[(0, 1), (2, 2)]);
        let b = CsrMatrix::from_pairs(4, &[(0, 3), (2, 2)]);
        assert!(a.union_in_place(&b));
        assert_eq!(a.row(0), &[1, 3]);
        assert!(!a.union_in_place(&b));
    }

    #[test]
    fn union_with_zero_is_noop() {
        let mut a = CsrMatrix::from_pairs(3, &[(1, 1)]);
        let z = CsrMatrix::zeros(3);
        assert!(!a.union_in_place(&z));
    }

    #[test]
    fn product_matches_dense_kernel() {
        let n = 90usize;
        let mut pairs_a = Vec::new();
        let mut pairs_b = Vec::new();
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..400 {
            pairs_a.push((next() % n as u32, next() % n as u32));
            pairs_b.push((next() % n as u32, next() % n as u32));
        }
        let sa = CsrMatrix::from_pairs(n, &pairs_a);
        let sb = CsrMatrix::from_pairs(n, &pairs_b);
        let da = DenseBitMatrix::from_pairs(n, &pairs_a);
        let db = DenseBitMatrix::from_pairs(n, &pairs_b);
        assert_eq!(sa.multiply(&sb).pairs(), da.multiply(&db).pairs());
    }

    #[test]
    fn parallel_product_equals_serial() {
        let n = 120usize;
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| [(i, (i * 31 + 7) % n as u32), (i, (i * 17 + 2) % n as u32)])
            .collect();
        let m = CsrMatrix::from_pairs(n, &pairs);
        let serial = m.multiply(&m);
        for workers in [1, 2, 5, 16] {
            let d = Device::new(workers);
            assert_eq!(m.multiply_on(&m, &d), serial, "workers {workers}");
        }
    }

    #[test]
    fn transpose_involution() {
        let m = CsrMatrix::from_pairs(7, &[(0, 6), (6, 0), (3, 3), (2, 5)]);
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(6, 0));
        assert!(m.transpose().get(5, 2));
    }

    #[test]
    fn zero_sized() {
        let m = CsrMatrix::zeros(0);
        assert!(m.multiply(&m).is_zero());
        assert_eq!(m.multiply_on(&m, &Device::new(3)).n(), 0);
    }

    #[test]
    fn accumulator_crosses_word_boundaries() {
        let mut acc = RowAccumulator::new(200);
        for j in [199u32, 0, 64, 63, 128] {
            acc.set(j);
        }
        assert_eq!(acc.drain_sorted(), vec![0, 63, 64, 128, 199]);
        // Reusable after drain.
        acc.set(5);
        assert_eq!(acc.drain_sorted(), vec![5]);
    }

    #[test]
    fn accumulator_mask_suppresses_known_bits() {
        let mut acc = RowAccumulator::new(200);
        acc.seed_mask(&[0, 64, 199]);
        for j in [0u32, 1, 64, 65, 199] {
            acc.set_masked(j);
        }
        assert_eq!(acc.drain_sorted(), vec![1, 65], "mask bits never drain");
        acc.clear_mask();
        acc.set_masked(0);
        assert_eq!(acc.drain_sorted(), vec![0], "mask cleared");
        // The unmasked fast path ignores the mask entirely.
        acc.seed_mask(&[7]);
        acc.set(7);
        assert_eq!(acc.drain_sorted(), vec![7]);
        acc.clear_mask();
    }

    #[test]
    fn masked_product_equals_product_minus_mask() {
        let n = 90usize;
        let mut pairs_a = Vec::new();
        let mut pairs_m = Vec::new();
        let mut state = 0xabcd_1234u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..500 {
            pairs_a.push((next() % n as u32, next() % n as u32));
            pairs_m.push((next() % n as u32, next() % n as u32));
        }
        let a = CsrMatrix::from_pairs(n, &pairs_a);
        let m = CsrMatrix::from_pairs(n, &pairs_m);
        let expect = a.multiply(&a).difference(&m);
        let masked = a.multiply_masked(&a, &m);
        assert_eq!(masked, expect);
        assert!(masked.intersect(&m).is_zero(), "disjoint from mask");
    }

    #[test]
    fn parallel_masked_product_equals_serial() {
        // Enough nnz to cross the offload threshold.
        let n = 600usize;
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| (0..120u32).map(move |d| (i, (i * 31 + d * 7 + 1) % n as u32)))
            .collect();
        let a = CsrMatrix::from_pairs(n, &pairs);
        let mask_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| (0..40u32).map(move |d| (i, (i * 13 + d * 3) % n as u32)))
            .collect();
        let m = CsrMatrix::from_pairs(n, &mask_pairs);
        assert!(a.nnz() + a.nnz() >= 64 * 1024, "test must cross threshold");
        let serial = a.multiply_masked(&a, &m);
        for workers in [2, 4] {
            let d = Device::new(workers);
            assert_eq!(a.multiply_masked_on(&a, &m, &d), serial, "w={workers}");
            assert_eq!(a.multiply_on(&a, &d), a.multiply(&a), "w={workers}");
        }
    }

    #[test]
    fn merge_sorted_cases() {
        assert_eq!(merge_sorted(&[], &[]), Vec::<u32>::new());
        assert_eq!(merge_sorted(&[1, 3], &[]), vec![1, 3]);
        assert_eq!(merge_sorted(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
    }
}

impl CsrMatrix {
    /// Merges `pairs` into the matrix in place; returns `true` if any
    /// entry was newly stored. This is the point-update path behind
    /// `BoolEngine::union_pairs` (a `GraphIndex` absorbing an edge
    /// batch): already-present pairs are filtered first — a no-op batch
    /// costs only the membership probes — and the merge writes straight
    /// into fresh flat `row_ptr`/`cols` storage (untouched rows are one
    /// contiguous copy; no per-row `Vec` allocations).
    pub fn insert_pairs(&mut self, pairs: &[(u32, u32)]) -> bool {
        if pairs.is_empty() {
            return false;
        }
        // Genuinely new entries, grouped per row, sorted and deduped.
        let mut by_row: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for &(i, j) in pairs {
            debug_assert!((i as usize) < self.n && (j as usize) < self.n);
            if !self.get(i, j) {
                by_row.entry(i).or_default().push(j);
            }
        }
        by_row.retain(|_, add| {
            add.sort_unstable();
            add.dedup();
            !add.is_empty()
        });
        if by_row.is_empty() {
            return false;
        }
        let added: usize = by_row.values().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut cols = Vec::with_capacity(self.cols.len() + added);
        row_ptr.push(0usize);
        let mut copied_up_to = 0usize; // index into the old `cols`
        for i in 0..self.n {
            let row_end = self.row_ptr[i + 1];
            if let Some(add) = by_row.get(&(i as u32)) {
                // Flush the contiguous run of untouched rows, then merge.
                cols.extend_from_slice(&self.cols[copied_up_to..self.row_ptr[i]]);
                merge_sorted_into(self.row(i), add, &mut cols);
                copied_up_to = row_end;
            }
            // Untouched rows are flushed lazily; record where row i ends.
            row_ptr.push(cols.len() + (row_end - copied_up_to));
        }
        cols.extend_from_slice(&self.cols[copied_up_to..]);
        debug_assert_eq!(cols.len(), self.cols.len() + added);
        self.row_ptr = row_ptr;
        self.cols = cols;
        true
    }

    /// `self \ other` — entries of `self` absent from `other` (per-row
    /// sorted difference).
    pub fn difference(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let rows = (0..self.n)
            .map(|i| {
                let (a, b) = (self.row(i), other.row(i));
                if b.is_empty() {
                    return a.to_vec();
                }
                a.iter()
                    .copied()
                    .filter(|j| b.binary_search(j).is_err())
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(rows)
    }

    /// `self ∩ other` — per-row sorted intersection.
    pub fn intersect(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let rows = (0..self.n)
            .map(|i| {
                let (a, b) = (self.row(i), other.row(i));
                a.iter()
                    .copied()
                    .filter(|j| b.binary_search(j).is_ok())
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(rows)
    }
}

#[cfg(test)]
mod setops_tests {
    use super::*;

    #[test]
    fn difference_and_intersect() {
        let a = CsrMatrix::from_pairs(4, &[(0, 1), (2, 3), (3, 3)]);
        let b = CsrMatrix::from_pairs(4, &[(2, 3), (1, 1)]);
        assert_eq!(a.difference(&b).pairs(), vec![(0, 1), (3, 3)]);
        assert_eq!(a.intersect(&b).pairs(), vec![(2, 3)]);
        assert!(a.difference(&a).is_zero());
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn insert_pairs_in_place() {
        let mut m = CsrMatrix::from_pairs(5, &[(0, 3), (2, 2)]);
        assert!(m.insert_pairs(&[(0, 1), (0, 3), (4, 0), (4, 0)]));
        assert_eq!(m.pairs(), vec![(0, 1), (0, 3), (2, 2), (4, 0)]);
        assert!(!m.insert_pairs(&[(0, 1), (2, 2)]), "all known");
        assert!(!m.insert_pairs(&[]), "empty batch is a no-op");
        // Rows stay strictly ascending after the merge.
        assert_eq!(m.row(0), &[1, 3]);
    }
}
